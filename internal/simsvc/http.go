package simsvc

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// statusClientClosedRequest is nginx's non-standard code for a client that
// went away mid-request; it keeps cancellations distinguishable from
// server-side failures in access logs.
const statusClientClosedRequest = 499

// maxSimulateBody bounds POST /v1/simulate request bodies; larger bodies
// get 413 before any decoding work. maxProgramBody is the POST /v1/program
// cap — larger because it carries source text, but still far below the
// registry's own per-source limit plus JSON overhead, so the intake wall's
// size layer (not the transport) is what callers normally hit.
const (
	maxSimulateBody = 1 << 20
	maxProgramBody  = 4 << 20
)

// NewHandler builds the sigserve HTTP API around s:
//
//	GET  /healthz            liveness + uptime (true even while draining)
//	GET  /readyz             readiness: 200, or 503 while draining/overloaded
//	GET  /metrics            counters and latency registry (JSON)
//	GET  /v1/benchmarks      served workload suite
//	GET  /v1/models          servable pipeline models
//	GET  /v1/simulate        one job (?bench=&model=&gran=); POST takes a JSON Request
//	GET  /v1/sweep           (benchmark × model) grid streamed as NDJSON (?gran=&bench=a,b&model=x,y)
//	GET  /v1/suite           the full parallel evaluation (every table input) as one JSON document;
//	                         ?bench=a,b evaluates an explicit list (user programs included)
//	GET  /v1/partial         a shard's mergeable share of a scattered suite (?bench=a,b)
//	POST /v1/program         untrusted-program intake (JSON {lang, source}, X-Tenant header);
//	                         accepted programs are served under "user:<sha256>" names.
//	                         X-Tenant is trusted as sent: deploy behind a proxy that
//	                         authenticates callers and sets it, or all quotas are per-name
//	POST /v1/program/install fleet replication: install an already-accepted program
//	                         (content hash re-verified, assembly rebuilt, budgets clamped,
//	                         install-rate metered; X-Install-Token required when configured)
//	GET  /v1/program/{id}    one accepted program (by "user:" name or bare hash)
//	GET  /v1/programs        resident accepted programs, most recently used first
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"status":        "ok",
			"uptimeSeconds": s.Uptime().Seconds(),
		})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness and readiness are split so a load balancer can take a
		// draining shard out of rotation while Close() is still finishing
		// its in-flight work (the process is alive the whole time).
		ready := s.Readiness()
		status := http.StatusOK
		if !ready.Ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, ready)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Snapshot
			Workers            int     `json:"workers"`
			CacheEntries       int     `json:"cacheEntries"`
			TraceMappedEntries int     `json:"traceMappedEntries"`
			UptimeSeconds      float64 `json:"uptimeSeconds"`
		}{s.Metrics().Snapshot(), s.Workers(), s.CacheLen(), s.TraceMappedEntries(), s.Uptime().Seconds()})
	})
	mux.HandleFunc("GET /v1/benchmarks", func(w http.ResponseWriter, r *http.Request) {
		type benchInfo struct {
			Name        string `json:"name"`
			Description string `json:"description"`
		}
		out := make([]benchInfo, 0, len(s.Benchmarks()))
		for _, b := range s.Benchmarks() {
			out = append(out, benchInfo{Name: b.Name, Description: b.Description})
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Models())
	})
	mux.HandleFunc("GET /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		req, err := requestFromQuery(r)
		if err != nil {
			writeError(w, err)
			return
		}
		serveSimulate(s, w, r.Context(), req)
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if !decodeBody(w, r, maxSimulateBody, &req) {
			return
		}
		serveSimulate(s, w, r.Context(), req)
	})
	mux.HandleFunc("POST /v1/program", func(w http.ResponseWriter, r *http.Request) {
		var req ProgramRequest
		if !decodeBody(w, r, maxProgramBody, &req) {
			return
		}
		p, err := s.SubmitProgram(r.Context(), r.Header.Get("X-Tenant"), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, p)
	})
	mux.HandleFunc("POST /v1/program/install", func(w http.ResponseWriter, r *http.Request) {
		// Fleet replication: a peer pushes an already-accepted program.
		// When an install token is configured this is fleet-internal only;
		// either way the registry re-derives the content hash, rebuilds the
		// assembly from source, and clamps the claimed budgets before
		// admitting it, so this endpoint cannot be used to smuggle
		// unvalidated code (or forged instruction budgets) past the wall.
		if tok := s.installToken; tok != "" &&
			subtle.ConstantTimeCompare([]byte(r.Header.Get("X-Install-Token")), []byte(tok)) != 1 {
			writeJSON(w, http.StatusUnauthorized,
				map[string]string{"error": "simsvc: program install requires a valid X-Install-Token"})
			return
		}
		var p workload.Program
		if !decodeBody(w, r, maxProgramBody, &p) {
			return
		}
		installed, err := s.InstallProgram(&p)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, installed)
	})
	mux.HandleFunc("GET /v1/program/{id}", func(w http.ResponseWriter, r *http.Request) {
		p, err := s.GetProgram(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, p)
	})
	mux.HandleFunc("GET /v1/programs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.ListPrograms())
	})
	mux.HandleFunc("GET /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		serveSweep(s, w, r)
	})
	mux.HandleFunc("GET /v1/suite", func(w http.ResponseWriter, r *http.Request) {
		resp, err := s.SuiteOf(r.Context(), splitList(r.URL.Query().Get("bench")))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/partial", func(w http.ResponseWriter, r *http.Request) {
		resp, err := s.Partial(r.Context(), splitList(r.URL.Query().Get("bench")))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	return withRecovery(s, mux)
}

// withRecovery contains panics that escape a handler (or are injected on
// the request goroutine, e.g. at the cache seams): the panic is counted,
// logged with its stack, and answered with a best-effort 500 instead of
// killing the connection's serve goroutine with the daemon's crash
// semantics. http.ErrAbortHandler keeps its conventional meaning.
func withRecovery(s *Service, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			s.metrics.panics.Add(1)
			stack := make([]byte, 64<<10)
			stack = stack[:runtime.Stack(stack, false)]
			log.Printf("simsvc: contained handler panic on %s %s: %v\n%s", r.Method, r.URL.Path, v, stack)
			// Best effort: if the handler already wrote headers this is
			// appended garbage on a broken response, which the client was
			// getting anyway.
			writeJSON(w, http.StatusInternalServerError,
				map[string]string{"error": fmt.Sprintf("simsvc: internal panic: %v", v)})
		}()
		next.ServeHTTP(w, r)
	})
}

// fixModelName undoes '+'-as-space query decoding: model names contain a
// literal '+' ("skewed+bypass") and never a space, so a client that didn't
// percent-encode still gets the model it asked for.
func fixModelName(m string) string { return strings.ReplaceAll(m, " ", "+") }

func requestFromQuery(r *http.Request) (Request, error) {
	q := r.URL.Query()
	req := Request{Bench: q.Get("bench"), Model: fixModelName(q.Get("model"))}
	if g := q.Get("gran"); g != "" {
		n, err := strconv.Atoi(g)
		if err != nil {
			return req, invalidf("bad granularity %q", g)
		}
		req.Gran = n
	}
	return req, nil
}

func serveSimulate(s *Service, w http.ResponseWriter, ctx context.Context, req Request) {
	resp, err := s.Simulate(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// serveSweep streams one NDJSON line per completed job, then a final
// {"summary": ...} line.
func serveSweep(s *Service, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	gran := 0
	if g := q.Get("gran"); g != "" {
		n, err := strconv.Atoi(g)
		if err != nil {
			writeError(w, invalidf("bad granularity %q", g))
			return
		}
		gran = n
	}
	benches := splitList(q.Get("bench"))
	models := splitList(q.Get("model"))
	for i, m := range models {
		models[i] = fixModelName(m)
	}

	// Validate before committing to the streaming content type so bad
	// requests still get a clean 400.
	for _, bn := range benchesOrAll(s, benches) {
		for _, mn := range modelsOrAll(s, models) {
			if _, err := s.validate(Request{Bench: bn, Model: mn, Gran: gran}); err != nil {
				writeError(w, err)
				return
			}
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	summary, err := s.Sweep(r.Context(), gran, benches, models, func(resp *Response) error {
		if err := enc.Encode(resp); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		// Headers are already out; terminate the stream with an error line.
		enc.Encode(map[string]string{"error": err.Error()})
		return
	}
	enc.Encode(map[string]*SweepSummary{"summary": summary})
}

func benchesOrAll(s *Service, benches []string) []string {
	if len(benches) > 0 {
		return benches
	}
	out := make([]string, 0, len(s.Benchmarks()))
	for _, b := range s.Benchmarks() {
		out = append(out, b.Name)
	}
	return out
}

func modelsOrAll(s *Service, models []string) []string {
	if len(models) > 0 {
		return models
	}
	return s.Models()
}

func splitList(v string) []string {
	if v == "" {
		return nil
	}
	parts := strings.Split(v, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// decodeBody reads a JSON POST body into v under a per-endpoint byte cap,
// answering 413 (typed JSON error) when the cap is hit and 400 on malformed
// or unknown-field JSON. It reports whether decoding succeeded; on false
// the response has been written.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v interface{}) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				map[string]string{"error": fmt.Sprintf("simsvc: request body exceeds %d bytes", tooBig.Limit)})
			return false
		}
		writeError(w, invalidf("bad request body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	payload := map[string]interface{}{"error": err.Error()}
	var inv *InvalidRequestError
	var quarantined *QuarantinedError
	var overloaded *OverloadedError
	var wlSource *workload.SourceError
	var wlRejected *workload.RejectedError
	var wlQuarantined *workload.QuarantinedError
	var wlQuota *workload.QuotaError
	var wlNotFound *workload.NotFoundError
	switch {
	case errors.As(err, &inv):
		status = http.StatusBadRequest
	case errors.As(err, &wlSource):
		// Compile/assemble diagnostics carry their position as structured
		// fields so clients can highlight the offending source line.
		status = http.StatusBadRequest
		payload["stage"] = wlSource.Stage
		if wlSource.Line > 0 {
			payload["line"] = wlSource.Line
		}
		if wlSource.Col > 0 {
			payload["column"] = wlSource.Col
		}
	case errors.As(err, &wlRejected):
		status = http.StatusBadRequest
		payload["check"] = wlRejected.Check
	case errors.As(err, &wlQuarantined):
		// The program is well-formed JSON-wise but permanently refused:
		// 422, no Retry-After — resubmission cannot help.
		status = http.StatusUnprocessableEntity
		payload["id"] = wlQuarantined.ID
	case errors.As(err, &wlQuota):
		status = http.StatusTooManyRequests
		if wlQuota.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(wlQuota.RetryAfter.Seconds()))))
		}
	case errors.As(err, &wlNotFound):
		status = http.StatusNotFound
	case errors.As(err, &overloaded):
		// Shed by admission control: tell the client when to come back,
		// derived from the queue depth and observed latency at shed time.
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(overloaded.RetryAfter.Seconds()))))
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrOverloaded):
		// A bare sentinel (no load context attached): keep the old hint.
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case errors.As(err, &quarantined):
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(quarantined.RetryAfter.Seconds()))))
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = statusClientClosedRequest
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, payload)
}
