package simsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/diffsim"
	"repro/internal/faultinject"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// intakeAsm is a tiny well-behaved submission (checksum 42 in $s7).
const intakeAsm = `
.text
main:
    lui $gp, 0x1000
    lw $t0, 0($gp)
    lw $t1, 4($gp)
    addu $s7, $t0, $t1
    addiu $v0, $zero, 10
    syscall

.data
a: .word 40
b: .word 2
`

// postProgram submits source and returns the response with its decoded
// body (one of which may be an error envelope).
func postProgram(t *testing.T, url, tenant, lang, source string) (*http.Response, map[string]interface{}) {
	t.Helper()
	body, _ := json.Marshal(ProgramRequest{Lang: lang, Source: source})
	req, err := http.NewRequest("POST", url+"/v1/program", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var decoded map[string]interface{}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("POST /v1/program: undecodable body %q", raw)
		}
	}
	return resp, decoded
}

// TestHTTPProgramLifecycle: submit → inspect → simulate → sweep → suite,
// all under the "user:" name.
func TestHTTPProgramLifecycle(t *testing.T) {
	checkLeaks(t)
	_, srv := testServer(t)

	resp, body := postProgram(t, srv.URL, "alice", workload.LangAsm, intakeAsm)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d (%v)", resp.StatusCode, body)
	}
	name, _ := body["name"].(string)
	if !strings.HasPrefix(name, "user:") {
		t.Fatalf("accepted name %q not namespaced", name)
	}
	if cs, _ := body["checksum"].(float64); uint32(cs) != 42 {
		t.Fatalf("checksum %v, want 42", body["checksum"])
	}

	// Resubmission is idempotent (content addressing): same name back.
	resp, body = postProgram(t, srv.URL, "alice", workload.LangAsm, intakeAsm)
	if resp.StatusCode != http.StatusOK || body["name"] != name {
		t.Fatalf("resubmit: status %d name %v", resp.StatusCode, body["name"])
	}

	var got workload.Program
	if r := getJSON(t, srv.URL+"/v1/program/"+strings.TrimPrefix(name, "user:"), &got); r.StatusCode != 200 {
		t.Fatalf("get program: %d", r.StatusCode)
	}
	if got.Name != name || got.Source != intakeAsm {
		t.Fatalf("lookup returned different program")
	}
	var listed []ProgramInfo
	getJSON(t, srv.URL+"/v1/programs", &listed)
	if len(listed) != 1 || listed[0].Name != name {
		t.Fatalf("program list: %+v", listed)
	}

	var sim Response
	if r := getJSON(t, srv.URL+"/v1/simulate?bench="+name+"&model="+pipeline.NameBaseline32, &sim); r.StatusCode != 200 {
		t.Fatalf("simulate user program: %d", r.StatusCode)
	}
	if sim.Insts == 0 || sim.Cycles == 0 {
		t.Fatalf("simulate returned empty result: %+v", sim)
	}

	// A mixed suite (built-in + user program) evaluates in requested order.
	var suite Response
	if r := getJSON(t, srv.URL+"/v1/suite?bench=g711dec,"+name, &suite); r.StatusCode != 200 {
		t.Fatalf("mixed suite: %d", r.StatusCode)
	}
	if n := len(suite.Suite.Benchmarks); n != 2 {
		t.Fatalf("mixed suite has %d benchmarks", n)
	}
	if suite.Suite.Benchmarks[1].Name != name {
		t.Fatalf("suite order: %q second, want %q", suite.Suite.Benchmarks[1].Name, name)
	}

	// And a partial share of a scattered suite resolves the user name too.
	var partial Response
	if r := getJSON(t, srv.URL+"/v1/partial?bench="+name, &partial); r.StatusCode != 200 {
		t.Fatalf("partial with user program: %d", r.StatusCode)
	}
}

// TestHTTPProgramErrors covers the typed 4xx wall answers, including the
// structured line/column fields (the satellite requirement that positions
// survive end-to-end).
func TestHTTPProgramErrors(t *testing.T) {
	_, srv := testServer(t)

	resp, body := postProgram(t, srv.URL, "", workload.LangMiniC, "int main() {\n  return x;\n}")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("minic error: status %d", resp.StatusCode)
	}
	if body["stage"] != "compile" || body["line"] != float64(2) {
		t.Fatalf("minic error envelope: %v", body)
	}
	resp, body = postProgram(t, srv.URL, "", workload.LangAsm, ".text\nmain:\n    bogus $t0\n    syscall\n")
	if resp.StatusCode != http.StatusBadRequest || body["stage"] != "assemble" || body["line"] != float64(3) {
		t.Fatalf("asm error envelope: status %d %v", resp.StatusCode, body)
	}
	if body["column"] == nil {
		t.Fatalf("asm error lost its column: %v", body)
	}

	// Unknown benchmark names: non-namespaced ones are typed 400s that
	// point at the namespace; unknown user: names are 404.
	var e struct {
		Error string `json:"error"`
	}
	if r := getJSON(t, srv.URL+"/v1/simulate?bench=notreal&model=baseline32", &e); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown bench: %d", r.StatusCode)
	}
	if !strings.Contains(e.Error, "user:") {
		t.Fatalf("unknown-bench error does not mention the namespace: %q", e.Error)
	}
	if r := getJSON(t, srv.URL+"/v1/simulate?bench=user:"+strings.Repeat("ab", 32)+"&model=baseline32", &e); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown user bench: %d", r.StatusCode)
	}
}

// TestHTTPProgramBodyCap: the intake endpoint has its own (larger) body
// bound with the same typed 413 envelope as /v1/simulate.
func TestHTTPProgramBodyCap(t *testing.T) {
	_, srv := testServer(t)
	huge, _ := json.Marshal(ProgramRequest{Source: strings.Repeat("x", maxProgramBody+1024)})
	resp, err := http.Post(srv.URL+"/v1/program", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
		t.Fatalf("413 body %q is not the typed envelope", raw)
	}
	// A simulate-sized body that would pass /v1/simulate's cap is fine here:
	// the caps are per-endpoint.
	src := intakeAsm + "\n# pad" + strings.Repeat(" x", (maxSimulateBody/2)+1024) + "\n"
	if len(src) <= maxSimulateBody {
		t.Fatal("test source does not exceed the simulate cap")
	}
	reg, err := workload.NewRegistry(workload.Options{MaxSourceBytes: maxProgramBody})
	if err != nil {
		t.Fatal(err)
	}
	s := testService(t, Config{Workers: 4, Programs: reg})
	srv2 := newTestServer(t, s)
	resp2, body := postProgram(t, srv2.URL, "", workload.LangAsm, src)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("large-but-legal submission: status %d (%v)", resp2.StatusCode, body)
	}
}

// TestHTTPProgramCorpusContained replays the malicious corpus from
// internal/workload/testdata through the public endpoint: every program is
// answered with a typed 4xx, the service stays ready, and nothing leaks.
func TestHTTPProgramCorpusContained(t *testing.T) {
	checkLeaks(t)
	reg, err := workload.NewRegistry(workload.Options{
		MaxInsts:       50_000,
		MaxOutputBytes: 1 << 10,
		SubmitPerMin:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := testService(t, Config{Workers: 4, Programs: reg})
	srv := newTestServer(t, s)

	files, err := filepath.Glob(filepath.Join("..", "workload", "testdata", "*.s"))
	if err != nil || len(files) == 0 {
		t.Fatalf("malicious corpus missing: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		resp, body := postProgram(t, srv.URL, "mallory", workload.LangAsm, string(src))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%v)", filepath.Base(f), resp.StatusCode, body)
		}
		if body["check"] == nil || body["error"] == "" {
			t.Errorf("%s: untyped rejection: %v", filepath.Base(f), body)
		}
		// The wall held: still ready for the next caller.
		if r := getJSON(t, srv.URL+"/readyz", nil); r.StatusCode != http.StatusOK {
			t.Fatalf("%s: service not ready after containment (%d)", filepath.Base(f), r.StatusCode)
		}
	}
	var m struct{ Snapshot }
	getJSON(t, srv.URL+"/metrics", &m)
	if m.ProgramsRej != uint64(len(files)) || m.ProgramsOK != 0 {
		t.Fatalf("intake counters after corpus: %+v", m.Snapshot)
	}
	if len(s.ListPrograms()) != 0 {
		t.Fatal("a malicious program reached the registry")
	}
}

// TestHTTPProgramQuotaFlood: a tenant hammering the intake is shed with 429
// + Retry-After while other tenants keep their own budgets.
func TestHTTPProgramQuotaFlood(t *testing.T) {
	reg, err := workload.NewRegistry(workload.Options{SubmitPerMin: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := testService(t, Config{Workers: 4, Programs: reg})
	srv := newTestServer(t, s)

	var shed *http.Response
	for i := 0; i < 6; i++ {
		src := fmt.Sprintf("%s\n# variant %d\n", intakeAsm, i)
		resp, _ := postProgram(t, srv.URL, "flooder", workload.LangAsm, src)
		if resp.StatusCode == http.StatusTooManyRequests {
			shed = resp
			break
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submission %d: status %d", i, resp.StatusCode)
		}
	}
	if shed == nil {
		t.Fatal("flooding tenant was never shed")
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Another tenant still gets through.
	if resp, body := postProgram(t, srv.URL, "bystander", workload.LangAsm, intakeAsm+"\n# other\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("bystander shed with the flooder: %d (%v)", resp.StatusCode, body)
	}
	var m struct{ Snapshot }
	getJSON(t, srv.URL+"/metrics", &m)
	if m.TenantSheds == 0 {
		t.Fatalf("tenantSheds not counted: %+v", m.Snapshot)
	}
}

// TestChaosProgramProbationKilled: faultinject kills the probationary run
// with a panic. The panic is contained, the submission answers 422, the
// program is quarantined (sticky — clearing the fault does not readmit it),
// and the service stays ready.
func TestChaosProgramProbationKilled(t *testing.T) {
	checkLeaks(t)
	inj := faultinject.MustNew(7, faultinject.Rule{
		Point: faultinject.PointProbation, Kind: faultinject.KindPanic, Prob: 1,
	})
	inj.SetEnabled(true)
	reg, err := workload.NewRegistry(workload.Options{Faults: inj, SubmitPerMin: 1000})
	if err != nil {
		t.Fatal(err)
	}
	s := testService(t, Config{Workers: 4, Programs: reg, Faults: inj})
	srv := newTestServer(t, s)

	resp, body := postProgram(t, srv.URL, "alice", workload.LangAsm, intakeAsm)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("killed probation: status %d (%v)", resp.StatusCode, body)
	}
	if body["id"] == nil || !strings.Contains(body["error"].(string), "quarantined") {
		t.Fatalf("422 envelope: %v", body)
	}
	if r := getJSON(t, srv.URL+"/readyz", nil); r.StatusCode != http.StatusOK {
		t.Fatalf("not ready after contained probation kill: %d", r.StatusCode)
	}
	inj.SetEnabled(false)
	resp, _ = postProgram(t, srv.URL, "alice", workload.LangAsm, intakeAsm)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("quarantine not sticky: status %d", resp.StatusCode)
	}
	var m struct{ Snapshot }
	getJSON(t, srv.URL+"/metrics", &m)
	// Both the kill and the sticky refusal answered "quarantined".
	if m.ProgramsQuar != 2 || m.ProgramsOK != 0 {
		t.Fatalf("intake counters: %+v", m.Snapshot)
	}
	if qs := reg.Quarantined(); len(qs) != 1 {
		t.Fatalf("%d quarantined programs, want 1", len(qs))
	}
}

// TestHTTPProgramInstallReplication: the fleet replication endpoint admits
// a peer's validated program (after re-deriving its compiled form from the
// content-addressed source) and refuses forgeries — both a tampered source
// under a claimed id and a forged Asm field riding a legitimate source.
func TestHTTPProgramInstallReplication(t *testing.T) {
	_, srvA := testServer(t)
	_, srvB := testServer(t)

	resp, body := postProgram(t, srvA.URL, "alice", workload.LangAsm, intakeAsm)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d (%v)", resp.StatusCode, body)
	}
	name := body["name"].(string)
	var p workload.Program
	getJSON(t, srvA.URL+"/v1/program/"+strings.TrimPrefix(name, "user:"), &p)

	install := func(prog workload.Program) (*http.Response, string) {
		t.Helper()
		buf, _ := json.Marshal(prog)
		resp, err := http.Post(srvB.URL+"/v1/program/install", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp, string(raw)
	}

	// A forged replica with a legitimate source but attacker-chosen assembly
	// must not run the forged code: the shard rebuilds Asm from Source.
	forged := p
	forged.Asm = ".text\nmain:\n    lui $s7, 0x6666\n    addiu $v0, $zero, 10\n    syscall\n"
	if resp, raw := install(forged); resp.StatusCode != http.StatusOK {
		t.Fatalf("replica with untrusted Asm: %d (%s)", resp.StatusCode, raw)
	}
	var sim Response
	if r := getJSON(t, srvB.URL+"/v1/simulate?bench="+name+"&model="+pipeline.NameBaseline32, &sim); r.StatusCode != 200 {
		t.Fatalf("simulate replicated program: %d", r.StatusCode)
	}
	var got workload.Program
	getJSON(t, srvB.URL+"/v1/program/"+strings.TrimPrefix(name, "user:"), &got)
	if got.Asm != p.Asm {
		t.Fatal("replica kept the forged assembly instead of rebuilding from source")
	}

	// Tampered source under the same claimed id: refused outright.
	tampered := p
	tampered.Source = p.Source + "\n# tampered\n"
	if resp, raw := install(tampered); resp.StatusCode != http.StatusBadRequest || !strings.Contains(raw, "hash mismatch") {
		t.Fatalf("tampered replica: %d (%s), want 400 hash mismatch", resp.StatusCode, raw)
	}

	// A replica claiming its own runaway budget (probation never ran on the
	// pushing "peer") is admitted with the shard's budget, not the claim —
	// the self-computed hash verifies, so only the clamp stands between a
	// forged MaxInsts and an O(MaxInsts) capture allocation on first run.
	// A fresh shard takes the push, so this exercises the install path, not
	// a resident re-push.
	_, srvC := testServer(t)
	inflated := p
	inflated.MaxInsts = 1 << 62
	buf, _ := json.Marshal(inflated)
	resp2, err := http.Post(srvC.URL+"/v1/program/install", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replica with inflated budget: %d", resp2.StatusCode)
	}
	var clamped workload.Program
	getJSON(t, srvC.URL+"/v1/program/"+strings.TrimPrefix(name, "user:"), &clamped)
	if clamped.MaxInsts != workload.DefaultMaxInsts {
		t.Fatalf("replica kept forged MaxInsts %d, want clamped to %d", clamped.MaxInsts, uint64(workload.DefaultMaxInsts))
	}
}

// TestHTTPProgramInstallToken: with a fleet install token configured, the
// replication endpoint refuses pushes without the shared secret — the
// public mux no longer accepts fleet-internal traffic from strangers.
func TestHTTPProgramInstallToken(t *testing.T) {
	reg, err := workload.NewRegistry(workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := reg.Submit(context.Background(), "alice", workload.LangAsm, intakeAsm)
	if err != nil {
		t.Fatal(err)
	}

	s := testService(t, Config{Workers: 2, InstallToken: "fleet-secret"})
	srv := newTestServer(t, s)
	install := func(token string) int {
		t.Helper()
		buf, _ := json.Marshal(p)
		req, err := http.NewRequest("POST", srv.URL+"/v1/program/install", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("X-Install-Token", token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	if code := install(""); code != http.StatusUnauthorized {
		t.Fatalf("tokenless install: %d, want 401", code)
	}
	if code := install("wrong"); code != http.StatusUnauthorized {
		t.Fatalf("wrong-token install: %d, want 401", code)
	}
	if code := install("fleet-secret"); code != http.StatusOK {
		t.Fatalf("tokened install: %d, want 200", code)
	}
	if _, err := s.GetProgram(p.Name); err != nil {
		t.Fatalf("installed program not resident: %v", err)
	}
}

// TestProgramFuzzCorpusAccepted feeds diffsim-generated programs (the
// sigfuzz corpus, rendered to assembly) through the public intake: every
// generated program must clear the whole wall, and its registered
// benchmark must re-verify.
func TestProgramFuzzCorpusAccepted(t *testing.T) {
	reg, err := workload.NewRegistry(workload.Options{SubmitPerMin: 1000})
	if err != nil {
		t.Fatal(err)
	}
	s := testService(t, Config{Workers: 4, Programs: reg})
	srv := newTestServer(t, s)
	for seed := uint64(1); seed <= 12; seed++ {
		p := diffsim.Generate(seed, diffsim.Config{Ops: 60})
		src, err := p.AsmSource()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		resp, body := postProgram(t, srv.URL, "fuzz", workload.LangAsm, src)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d rejected: %d (%v)", seed, resp.StatusCode, body)
		}
		name := body["name"].(string)
		prog, err := s.GetProgram(name)
		if err != nil {
			t.Fatalf("seed %d: lookup: %v", seed, err)
		}
		if _, err := prog.Benchmark().RunVerified(); err != nil {
			t.Fatalf("seed %d: accepted program fails verification: %v", seed, err)
		}
	}
}
