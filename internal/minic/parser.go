package minic

// parser is a recursive-descent parser with C-style operator precedence.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	return errAt(p.cur().line, p.cur().col, format, args...)
}

func (p *parser) accept(text string) bool {
	if p.cur().text == text && (p.cur().kind == tokPunct || p.cur().kind == tokKeyword) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %s", text, p.cur())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected identifier, found %s", p.cur())
	}
	return p.next().text, nil
}

// parse builds the program AST.
func parse(toks []token) (*program, error) {
	p := &parser{toks: toks}
	prog := &program{}
	for p.cur().kind != tokEOF {
		if err := p.expect("int"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		line := p.cur().line
		if p.accept("(") {
			fn, err := p.parseFunc(name, line)
			if err != nil {
				return nil, err
			}
			prog.funcs = append(prog.funcs, fn)
			continue
		}
		g, err := p.parseGlobal(name, line)
		if err != nil {
			return nil, err
		}
		prog.globals = append(prog.globals, g)
	}
	return prog, nil
}

func (p *parser) parseGlobal(name string, line int) (*globalDecl, error) {
	g := &globalDecl{name: name, line: line}
	if p.accept("[") {
		if p.cur().kind != tokNumber {
			return nil, p.errf("array size must be a constant")
		}
		g.size = int(p.next().val)
		if g.size <= 0 {
			return nil, p.errf("array size must be positive")
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		if g.size > 0 {
			if err := p.expect("{"); err != nil {
				return nil, err
			}
			for !p.accept("}") {
				v, err := p.constValue()
				if err != nil {
					return nil, err
				}
				g.init = append(g.init, v)
				if !p.accept(",") {
					if err := p.expect("}"); err != nil {
						return nil, err
					}
					break
				}
			}
			if len(g.init) > g.size {
				return nil, p.errf("%d initializers for array of %d", len(g.init), g.size)
			}
		} else {
			v, err := p.constValue()
			if err != nil {
				return nil, err
			}
			g.init = []int64{v}
		}
	}
	return g, p.expect(";")
}

// constValue parses a (possibly negated) numeric constant.
func (p *parser) constValue() (int64, error) {
	neg := p.accept("-")
	if p.cur().kind != tokNumber {
		return 0, p.errf("expected constant, found %s", p.cur())
	}
	v := p.next().val
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) parseFunc(name string, line int) (*funcDecl, error) {
	fn := &funcDecl{name: name, line: line}
	for !p.accept(")") {
		if err := p.expect("int"); err != nil {
			return nil, err
		}
		pn, err := p.ident()
		if err != nil {
			return nil, err
		}
		fn.params = append(fn.params, pn)
		if !p.accept(",") {
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if len(fn.params) > 4 {
		return nil, p.errf("function %s: at most 4 parameters", name)
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.body = body
	return fn, nil
}

func (p *parser) parseBlock() (*blockStmt, error) {
	line := p.cur().line
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &blockStmt{line: line}
	for !p.accept("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.stmts = append(b.stmts, s)
	}
	return b, nil
}

func (p *parser) parseStmt() (stmt, error) {
	line := p.cur().line
	switch {
	case p.cur().text == "{" && p.cur().kind == tokPunct:
		return p.parseBlock()
	case p.accept("int"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		d := &declStmt{name: name, line: line}
		if p.accept("[") {
			if p.cur().kind != tokNumber {
				return nil, p.errf("local array size must be a constant")
			}
			d.size = int(p.next().val)
			if d.size <= 0 {
				return nil, p.errf("array size must be positive")
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return d, p.expect(";")
		}
		if p.accept("=") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.init = e
		}
		return d, p.expect(";")
	case p.accept("break"):
		return &breakStmt{line: line}, p.expect(";")
	case p.accept("continue"):
		return &continueStmt{line: line}, p.expect(";")
	case p.accept("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s := &ifStmt{cond: cond, then: then, line: line}
		if p.accept("else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			s.els = els
		}
		return s, nil
	case p.accept("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body, line: line}, nil
	case p.accept("for"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		s := &forStmt{line: line}
		if !p.accept(";") {
			init, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			s.init = init
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		if !p.accept(";") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.cond = cond
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		if p.cur().text != ")" {
			post, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			s.post = post
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.body = body
		return s, nil
	case p.accept("return"):
		s := &returnStmt{line: line}
		if !p.accept(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.value = e
			return s, p.expect(";")
		}
		return s, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		return s, p.expect(";")
	}
}

// parseSimpleStmt parses an assignment or expression statement (no
// trailing semicolon), also used by for-clauses. `int x = e` declarations
// are allowed in for-init.
func (p *parser) parseSimpleStmt() (stmt, error) {
	line := p.cur().line
	if p.accept("int") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		d := &declStmt{name: name, line: line}
		if p.accept("=") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.init = e
		}
		return d, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|="} {
		if p.accept(op) {
			switch e.(type) {
			case *identExpr, *indexExpr:
			default:
				return nil, p.errf("left side of %s is not assignable", op)
			}
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &assignStmt{target: e, op: op, value: v, line: line}, nil
		}
	}
	return &exprStmt{e: e, line: line}, nil
}

// Operator precedence, lowest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseExpr() (expr, error) { return p.parseBinary(0) }

func (p *parser) parseBinary(level int) (expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	x, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precLevels[level] {
			if p.cur().kind == tokPunct && p.cur().text == op {
				line := p.cur().line
				p.pos++
				y, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				x = &binaryExpr{op: op, x: x, y: y, line: line}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *parser) parseUnary() (expr, error) {
	line := p.cur().line
	for _, op := range []string{"-", "!", "~"} {
		if p.cur().kind == tokPunct && p.cur().text == op {
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &unaryExpr{op: op, x: x, line: line}, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (expr, error) {
	line := p.cur().line
	switch {
	case p.cur().kind == tokNumber:
		t := p.next()
		return &numExpr{val: t.val, line: line}, nil
	case p.accept("("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	case p.cur().kind == tokIdent:
		name := p.next().text
		if p.accept("(") {
			c := &callExpr{name: name, line: line}
			for !p.accept(")") {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.args = append(c.args, a)
				if !p.accept(",") {
					if err := p.expect(")"); err != nil {
						return nil, err
					}
					break
				}
			}
			if len(c.args) > 4 {
				return nil, p.errf("call %s: at most 4 arguments", name)
			}
			return c, nil
		}
		if p.accept("[") {
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return &indexExpr{array: name, index: idx, line: line}, nil
		}
		return &identExpr{name: name, line: line}, nil
	}
	return nil, p.errf("expected expression, found %s", p.cur())
}
