package minic

import (
	"strconv"

	"repro/internal/asm"
)

// CompileToAsm translates minic source to MIPS-subset assembly text.
func CompileToAsm(src string) (string, error) {
	toks, err := lex(src)
	if err != nil {
		return "", err
	}
	prog, err := parse(toks)
	if err != nil {
		return "", err
	}
	return generate(prog)
}

// Compile translates minic source all the way to a loadable program.
func Compile(src string) (*asm.Program, error) {
	text, err := CompileToAsm(src)
	if err != nil {
		return nil, err
	}
	return asm.Assemble(text)
}

// parseNum is used by the lexer for both decimal and hex literals.
func parseNum(text string) (int64, error) {
	return strconv.ParseInt(text, 0, 64)
}
