package minic

import "fmt"

// Error is a positioned compile diagnostic. Line and Col are 1-based;
// Col (or both) may be 0 when the position is unknown (e.g. whole-program
// checks like a missing main). Callers that surface compile failures to
// untrusted submitters (the /v1/program intake) unwrap to this type to
// report the offending source position as structured fields rather than
// by parsing the message.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	switch {
	case e.Line > 0 && e.Col > 0:
		return fmt.Sprintf("minic: line %d:%d: %s", e.Line, e.Col, e.Msg)
	case e.Line > 0:
		return fmt.Sprintf("minic: line %d: %s", e.Line, e.Msg)
	}
	return "minic: " + e.Msg
}

func errAt(line, col int, format string, args ...interface{}) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
