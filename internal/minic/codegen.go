package minic

import (
	"fmt"
	"strings"
)

// Code generation: a straightforward single-pass generator using an
// expression temp-register stack ($t0..$t9), sp-relative stack frames for
// locals, and the simulator's calling convention (args in $a0..$a3, result
// in $v0, $ra saved in the frame). All user symbols are prefixed to keep
// the generated namespace separate from the startup stub.

const symPrefix = "mc_"

// tempRegs is the expression evaluation stack, in allocation order.
var tempRegs = []string{"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7", "$t8", "$t9"}

// builtins maps names to syscall numbers.
var builtins = map[string]int{
	"print_int": 1,
	"putc":      11,
	"exit":      17,
}

type codegen struct {
	prog   *program
	out    strings.Builder
	data   strings.Builder
	labels int

	// per-function state
	fn      *funcDecl
	locals  map[string]int // scalar name -> frame offset
	arrays  map[string]localArray
	frame   int
	depth   int // temp stack depth
	globals map[string]*globalDecl
	funcs   map[string]*funcDecl
	loops   []loopLabels // innermost last
}

// localArray is a stack-allocated array's frame placement.
type localArray struct {
	offset, size int
}

// loopLabels carries the jump targets for break/continue.
type loopLabels struct {
	brk, cont string
}

func (g *codegen) errf(line int, format string, args ...interface{}) error {
	return errAt(line, 0, format, args...)
}

func (g *codegen) emit(format string, args ...interface{}) {
	fmt.Fprintf(&g.out, "    "+format+"\n", args...)
}

func (g *codegen) label(format string, args ...interface{}) {
	fmt.Fprintf(&g.out, format+":\n", args...)
}

func (g *codegen) newLabel(hint string) string {
	g.labels++
	return fmt.Sprintf("%s_L%d_%s", symPrefix, g.labels, hint)
}

// push allocates the next temp register.
func (g *codegen) push(line int) (string, error) {
	if g.depth >= len(tempRegs) {
		return "", g.errf(line, "expression too deeply nested (more than %d live temporaries)", len(tempRegs))
	}
	r := tempRegs[g.depth]
	g.depth++
	return r, nil
}

// pop releases the top temp register.
func (g *codegen) pop() string {
	g.depth--
	return tempRegs[g.depth]
}

// generate compiles the whole program to assembly text.
func generate(prog *program) (string, error) {
	g := &codegen{
		prog:    prog,
		globals: make(map[string]*globalDecl),
		funcs:   make(map[string]*funcDecl),
	}
	for _, gd := range prog.globals {
		if g.globals[gd.name] != nil {
			return "", g.errf(gd.line, "global %s redefined", gd.name)
		}
		g.globals[gd.name] = gd
	}
	hasMain := false
	for _, fn := range prog.funcs {
		if g.funcs[fn.name] != nil {
			return "", g.errf(fn.line, "function %s redefined", fn.name)
		}
		if builtins[fn.name] != 0 {
			return "", g.errf(fn.line, "%s is a builtin", fn.name)
		}
		g.funcs[fn.name] = fn
		if fn.name == "main" {
			hasMain = true
		}
	}
	if !hasMain {
		return "", &Error{Msg: "no main function"}
	}

	// Startup stub: call the user's main, leave its result in $s7 (the
	// benchmark checksum convention) and exit cleanly. A nonzero process
	// exit code is produced only by an explicit exit(n) call.
	g.out.WriteString(".text\nmain:\n")
	g.emit("jal  %smain", symPrefix)
	g.emit("move $s7, $v0")
	g.emit("li   $v0, 10")
	g.emit("syscall")

	for _, fn := range prog.funcs {
		if err := g.genFunc(fn); err != nil {
			return "", err
		}
	}

	// Data segment.
	g.data.WriteString(".data\n")
	for _, gd := range prog.globals {
		fmt.Fprintf(&g.data, "%s%s:\n", symPrefix, gd.name)
		n := gd.size
		if n == 0 {
			n = 1
		}
		vals := make([]int64, n)
		copy(vals, gd.init)
		for i := 0; i < n; i += 8 {
			end := i + 8
			if end > n {
				end = n
			}
			parts := make([]string, 0, 8)
			for _, v := range vals[i:end] {
				parts = append(parts, fmt.Sprintf("%d", v))
			}
			fmt.Fprintf(&g.data, "    .word %s\n", strings.Join(parts, ", "))
		}
	}
	return g.out.String() + g.data.String(), nil
}

// collectLocals walks a function body gathering declarations.
func collectLocals(s stmt, decls *[]*declStmt) {
	switch t := s.(type) {
	case *blockStmt:
		for _, c := range t.stmts {
			collectLocals(c, decls)
		}
	case *declStmt:
		*decls = append(*decls, t)
	case *ifStmt:
		collectLocals(t.then, decls)
		if t.els != nil {
			collectLocals(t.els, decls)
		}
	case *whileStmt:
		collectLocals(t.body, decls)
	case *forStmt:
		if t.init != nil {
			collectLocals(t.init, decls)
		}
		collectLocals(t.body, decls)
	}
}

func (g *codegen) genFunc(fn *funcDecl) error {
	g.fn = fn
	g.locals = make(map[string]int)
	g.arrays = make(map[string]localArray)
	g.depth = 0
	g.loops = nil

	offset := 0
	for _, pn := range fn.params {
		g.locals[pn] = offset
		offset += 4
	}
	var decls []*declStmt
	collectLocals(fn.body, &decls)
	// Assign frame slots. Re-declarations of the same scalar name (e.g.
	// `int i` in two loops) share one slot — block scoping is not modelled.
	for _, d := range decls {
		if d.size > 0 {
			if _, ok := g.arrays[d.name]; ok {
				return g.errf(d.line, "local array %s declared twice", d.name)
			}
			g.arrays[d.name] = localArray{offset: offset, size: d.size}
			offset += 4 * d.size
			continue
		}
		if _, ok := g.locals[d.name]; ok {
			continue
		}
		g.locals[d.name] = offset
		offset += 4
	}
	// Temp-save area (spill slots around calls) sits above locals; computed
	// worst-case as the full temp stack.
	g.frame = offset + 4*len(tempRegs) + 4 // + saved ra

	g.label("%s%s", symPrefix, fn.name)
	g.emit("addiu $sp, $sp, -%d", g.frame)
	g.emit("sw   $ra, %d($sp)", g.frame-4)
	for i, pn := range fn.params {
		g.emit("sw   $a%d, %d($sp)", i, g.locals[pn])
	}

	if err := g.genStmt(fn.body); err != nil {
		return err
	}

	// Implicit return 0.
	g.emit("li   $v0, 0")
	g.label("%s%s_ret", symPrefix, fn.name)
	g.emit("lw   $ra, %d($sp)", g.frame-4)
	g.emit("addiu $sp, $sp, %d", g.frame)
	g.emit("jr   $ra")
	return nil
}

func (g *codegen) genStmt(s stmt) error {
	switch t := s.(type) {
	case *blockStmt:
		for _, c := range t.stmts {
			if err := g.genStmt(c); err != nil {
				return err
			}
		}
		return nil
	case *declStmt:
		if t.size > 0 {
			// Zero the array at its declaration, giving C-like defined
			// behaviour for the subset.
			arr := g.arrays[t.name]
			r, err := g.push(t.line)
			if err != nil {
				return err
			}
			g.emit("li   %s, %d", r, arr.size)
			idx, err := g.push(t.line)
			if err != nil {
				return err
			}
			g.emit("addiu %s, $sp, %d", idx, arr.offset)
			top := g.newLabel("zinit")
			g.label("%s", top)
			g.emit("sw   $zero, 0(%s)", idx)
			g.emit("addiu %s, %s, 4", idx, idx)
			g.emit("addiu %s, %s, -1", r, r)
			g.emit("bgtz %s, %s", r, top)
			g.pop()
			g.pop()
			return nil
		}
		if t.init == nil {
			return nil
		}
		r, err := g.genExpr(t.init)
		if err != nil {
			return err
		}
		g.emit("sw   %s, %d($sp)", r, g.locals[t.name])
		g.pop()
		return nil
	case *assignStmt:
		return g.genAssign(t)
	case *ifStmt:
		cond, err := g.genExpr(t.cond)
		if err != nil {
			return err
		}
		elseL, endL := g.newLabel("else"), g.newLabel("endif")
		g.emit("beqz %s, %s", cond, elseL)
		g.pop()
		if err := g.genStmt(t.then); err != nil {
			return err
		}
		g.emit("j    %s", endL)
		g.label("%s", elseL)
		if t.els != nil {
			if err := g.genStmt(t.els); err != nil {
				return err
			}
		}
		g.label("%s", endL)
		return nil
	case *whileStmt:
		top, end := g.newLabel("while"), g.newLabel("wend")
		g.label("%s", top)
		cond, err := g.genExpr(t.cond)
		if err != nil {
			return err
		}
		g.emit("beqz %s, %s", cond, end)
		g.pop()
		g.loops = append(g.loops, loopLabels{brk: end, cont: top})
		if err := g.genStmt(t.body); err != nil {
			return err
		}
		g.loops = g.loops[:len(g.loops)-1]
		g.emit("j    %s", top)
		g.label("%s", end)
		return nil
	case *forStmt:
		if t.init != nil {
			if err := g.genStmt(t.init); err != nil {
				return err
			}
		}
		top, end := g.newLabel("for"), g.newLabel("fend")
		g.label("%s", top)
		if t.cond != nil {
			cond, err := g.genExpr(t.cond)
			if err != nil {
				return err
			}
			g.emit("beqz %s, %s", cond, end)
			g.pop()
		}
		post := g.newLabel("fpost")
		g.loops = append(g.loops, loopLabels{brk: end, cont: post})
		if err := g.genStmt(t.body); err != nil {
			return err
		}
		g.loops = g.loops[:len(g.loops)-1]
		g.label("%s", post)
		if t.post != nil {
			if err := g.genStmt(t.post); err != nil {
				return err
			}
		}
		g.emit("j    %s", top)
		g.label("%s", end)
		return nil
	case *returnStmt:
		if t.value != nil {
			r, err := g.genExpr(t.value)
			if err != nil {
				return err
			}
			g.emit("move $v0, %s", r)
			g.pop()
		} else {
			g.emit("li   $v0, 0")
		}
		g.emit("j    %s%s_ret", symPrefix, g.fn.name)
		return nil
	case *exprStmt:
		r, err := g.genExpr(t.e)
		if err != nil {
			return err
		}
		_ = r
		g.pop()
		return nil
	case *breakStmt:
		if len(g.loops) == 0 {
			return g.errf(t.line, "break outside loop")
		}
		g.emit("j    %s", g.loops[len(g.loops)-1].brk)
		return nil
	case *continueStmt:
		if len(g.loops) == 0 {
			return g.errf(t.line, "continue outside loop")
		}
		g.emit("j    %s", g.loops[len(g.loops)-1].cont)
		return nil
	}
	return g.errf(s.stmtLine(), "unhandled statement %T", s)
}

func (g *codegen) genAssign(t *assignStmt) error {
	// Compound assignment: rewrite a op= b as a = a op b.
	value := t.value
	if t.op != "=" {
		value = &binaryExpr{op: strings.TrimSuffix(t.op, "="), x: t.target, y: t.value, line: t.line}
	}
	switch target := t.target.(type) {
	case *identExpr:
		r, err := g.genExpr(value)
		if err != nil {
			return err
		}
		if off, ok := g.locals[target.name]; ok {
			g.emit("sw   %s, %d($sp)", r, off)
		} else if gd, ok := g.globals[target.name]; ok {
			if gd.size > 0 {
				return g.errf(t.line, "cannot assign whole array %s", target.name)
			}
			addr, err := g.push(t.line)
			if err != nil {
				return err
			}
			g.emit("la   %s, %s%s", addr, symPrefix, target.name)
			g.emit("sw   %s, 0(%s)", r, addr)
			g.pop()
		} else {
			return g.errf(t.line, "undefined variable %s", target.name)
		}
		g.pop()
		return nil
	case *indexExpr:
		v, err := g.genExpr(value)
		if err != nil {
			return err
		}
		idx, err := g.genExpr(target.index)
		if err != nil {
			return err
		}
		g.emit("sll  %s, %s, 2", idx, idx)
		if arr, ok := g.arrays[target.array]; ok {
			g.emit("addu %s, %s, $sp", idx, idx)
			g.emit("sw   %s, %d(%s)", v, arr.offset, idx)
			g.pop() // idx
			g.pop() // v
			return nil
		}
		gd, ok := g.globals[target.array]
		if !ok || gd.size == 0 {
			return g.errf(t.line, "%s is not an array", target.array)
		}
		addr, err := g.push(t.line)
		if err != nil {
			return err
		}
		g.emit("la   %s, %s%s", addr, symPrefix, target.array)
		g.emit("addu %s, %s, %s", addr, addr, idx)
		g.emit("sw   %s, 0(%s)", v, addr)
		g.pop() // addr
		g.pop() // idx
		g.pop() // v
		return nil
	}
	return g.errf(t.line, "invalid assignment target")
}

// genExpr evaluates e into a freshly pushed temp register and returns it.
func (g *codegen) genExpr(e expr) (string, error) {
	switch t := e.(type) {
	case *numExpr:
		r, err := g.push(t.line)
		if err != nil {
			return "", err
		}
		g.emit("li   %s, %d", r, int32(t.val))
		return r, nil
	case *identExpr:
		r, err := g.push(t.line)
		if err != nil {
			return "", err
		}
		if off, ok := g.locals[t.name]; ok {
			g.emit("lw   %s, %d($sp)", r, off)
			return r, nil
		}
		if gd, ok := g.globals[t.name]; ok {
			if gd.size > 0 {
				return "", g.errf(t.line, "array %s used without index", t.name)
			}
			g.emit("la   %s, %s%s", r, symPrefix, t.name)
			g.emit("lw   %s, 0(%s)", r, r)
			return r, nil
		}
		return "", g.errf(t.line, "undefined variable %s", t.name)
	case *indexExpr:
		idx, err := g.genExpr(t.index)
		if err != nil {
			return "", err
		}
		g.emit("sll  %s, %s, 2", idx, idx)
		if arr, ok := g.arrays[t.array]; ok {
			g.emit("addu %s, %s, $sp", idx, idx)
			g.emit("lw   %s, %d(%s)", idx, arr.offset, idx)
			return idx, nil
		}
		gd, ok := g.globals[t.array]
		if !ok || gd.size == 0 {
			return "", g.errf(t.line, "%s is not an array", t.array)
		}
		addr, err := g.push(t.line)
		if err != nil {
			return "", err
		}
		g.emit("la   %s, %s%s", addr, symPrefix, t.array)
		g.emit("addu %s, %s, %s", addr, addr, idx)
		g.emit("lw   %s, 0(%s)", idx, addr)
		g.pop() // addr; idx now holds the loaded value
		return idx, nil
	case *unaryExpr:
		x, err := g.genExpr(t.x)
		if err != nil {
			return "", err
		}
		switch t.op {
		case "-":
			g.emit("subu %s, $zero, %s", x, x)
		case "!":
			g.emit("sltiu %s, %s, 1", x, x)
		case "~":
			g.emit("nor  %s, %s, $zero", x, x)
		}
		return x, nil
	case *binaryExpr:
		return g.genBinary(t)
	case *callExpr:
		return g.genCall(t)
	}
	return "", g.errf(e.exprLine(), "unhandled expression %T", e)
}

func (g *codegen) genBinary(t *binaryExpr) (string, error) {
	// Short-circuit forms evaluate the right side conditionally.
	if t.op == "&&" || t.op == "||" {
		x, err := g.genExpr(t.x)
		if err != nil {
			return "", err
		}
		end := g.newLabel("sc")
		g.emit("sltu %s, $zero, %s", x, x) // normalize to 0/1
		if t.op == "&&" {
			g.emit("beqz %s, %s", x, end)
		} else {
			g.emit("bnez %s, %s", x, end)
		}
		y, err := g.genExpr(t.y)
		if err != nil {
			return "", err
		}
		g.emit("sltu %s, $zero, %s", y, y)
		g.emit("move %s, %s", x, y)
		g.pop()
		g.label("%s", end)
		return x, nil
	}

	x, err := g.genExpr(t.x)
	if err != nil {
		return "", err
	}
	y, err := g.genExpr(t.y)
	if err != nil {
		return "", err
	}
	switch t.op {
	case "+":
		g.emit("addu %s, %s, %s", x, x, y)
	case "-":
		g.emit("subu %s, %s, %s", x, x, y)
	case "*":
		g.emit("mult %s, %s", x, y)
		g.emit("mflo %s", x)
	case "/":
		g.emit("div  %s, %s", x, y)
		g.emit("mflo %s", x)
	case "%":
		g.emit("div  %s, %s", x, y)
		g.emit("mfhi %s", x)
	case "&":
		g.emit("and  %s, %s, %s", x, x, y)
	case "|":
		g.emit("or   %s, %s, %s", x, x, y)
	case "^":
		g.emit("xor  %s, %s, %s", x, x, y)
	case "<<":
		g.emit("sllv %s, %s, %s", x, x, y)
	case ">>":
		g.emit("srav %s, %s, %s", x, x, y)
	case "<":
		g.emit("slt  %s, %s, %s", x, x, y)
	case ">":
		g.emit("slt  %s, %s, %s", x, y, x)
	case "<=":
		g.emit("slt  %s, %s, %s", x, y, x)
		g.emit("xori %s, %s, 1", x, x)
	case ">=":
		g.emit("slt  %s, %s, %s", x, x, y)
		g.emit("xori %s, %s, 1", x, x)
	case "==":
		g.emit("xor  %s, %s, %s", x, x, y)
		g.emit("sltiu %s, %s, 1", x, x)
	case "!=":
		g.emit("xor  %s, %s, %s", x, x, y)
		g.emit("sltu %s, $zero, %s", x, x)
	default:
		return "", g.errf(t.line, "unhandled operator %q", t.op)
	}
	g.pop() // y
	return x, nil
}

func (g *codegen) genCall(t *callExpr) (string, error) {
	// Evaluate arguments onto the temp stack.
	for _, a := range t.args {
		if _, err := g.genExpr(a); err != nil {
			return "", err
		}
	}
	argBase := g.depth - len(t.args)

	if sys, ok := builtins[t.name]; ok {
		if len(t.args) != 1 {
			return "", g.errf(t.line, "%s takes one argument", t.name)
		}
		g.emit("move $a0, %s", tempRegs[argBase])
		g.emit("li   $v0, %d", sys)
		g.emit("syscall")
		g.pop()
		r, err := g.push(t.line)
		if err != nil {
			return "", err
		}
		g.emit("li   %s, 0", r)
		return r, nil
	}

	if g.funcs[t.name] == nil {
		return "", g.errf(t.line, "undefined function %s", t.name)
	}
	if len(t.args) != len(g.funcs[t.name].params) {
		return "", g.errf(t.line, "%s expects %d arguments, got %d",
			t.name, len(g.funcs[t.name].params), len(t.args))
	}

	// Save live temps below the arguments (the callee clobbers $t regs),
	// move arguments into place, call, restore.
	saveBase := g.frame - 4 - 4*len(tempRegs)
	for i := 0; i < argBase; i++ {
		g.emit("sw   %s, %d($sp)", tempRegs[i], saveBase+4*i)
	}
	for i := range t.args {
		g.emit("move $a%d, %s", i, tempRegs[argBase+i])
	}
	g.emit("jal  %s%s", symPrefix, t.name)
	for range t.args {
		g.pop()
	}
	for i := 0; i < argBase; i++ {
		g.emit("lw   %s, %d($sp)", tempRegs[i], saveBase+4*i)
	}
	r, err := g.push(t.line)
	if err != nil {
		return "", err
	}
	g.emit("move %s, $v0", r)
	return r, nil
}
