package minic

import (
	"fmt"
)

// Reference AST interpreter, used only for differential testing: a random
// program is executed both by this interpreter and by the compiled binary
// on the CPU simulator; results must agree exactly.

type interp struct {
	globals map[string]*[]int32
	funcs   map[string]*funcDecl
	steps   int
}

type interpBreakErr struct{}
type interpContinueErr struct{}

func (e *interpBreakErr) Error() string    { return "break" }
func (e *interpContinueErr) Error() string { return "continue" }

const interpMaxSteps = 2_000_000

func newInterp(prog *program) (*interp, error) {
	in := &interp{
		globals: make(map[string]*[]int32),
		funcs:   make(map[string]*funcDecl),
	}
	for _, g := range prog.globals {
		n := g.size
		if n == 0 {
			n = 1
		}
		vals := make([]int32, n)
		for i, v := range g.init {
			vals[i] = int32(v)
		}
		in.globals[g.name] = &vals
	}
	for _, f := range prog.funcs {
		in.funcs[f.name] = f
	}
	return in, nil
}

func (in *interp) tick() error {
	in.steps++
	if in.steps > interpMaxSteps {
		return fmt.Errorf("interpreter step limit")
	}
	return nil
}

// frame is one function activation: scalar cells plus local arrays.
type frame struct {
	vars   map[string]*int32
	arrays map[string][]int32
}

// call runs a function and returns its result.
func (in *interp) call(name string, args []int32) (int32, error) {
	fn := in.funcs[name]
	env := &frame{vars: make(map[string]*int32), arrays: make(map[string][]int32)}
	for i, p := range fn.params {
		v := args[i]
		env.vars[p] = &v
	}
	err := in.execStmt(fn.body, env)
	if r, ok := err.(*interpReturnErr); ok {
		return r.val, nil
	}
	if err != nil {
		return 0, err
	}
	return 0, nil // implicit return 0
}

type interpReturnErr struct{ val int32 }

func (e *interpReturnErr) Error() string { return "return" }

func (in *interp) execStmt(s stmt, env *frame) error {
	if err := in.tick(); err != nil {
		return err
	}
	switch t := s.(type) {
	case *blockStmt:
		for _, c := range t.stmts {
			if err := in.execStmt(c, env); err != nil {
				return err
			}
		}
		return nil
	case *declStmt:
		if t.size > 0 {
			env.arrays[t.name] = make([]int32, t.size) // zeroed at declaration
			return nil
		}
		var v int32
		if t.init != nil {
			x, err := in.eval(t.init, env)
			if err != nil {
				return err
			}
			v = x
		}
		if cell, ok := env.vars[t.name]; ok {
			*cell = v // shared slot semantics, as in the code generator
			return nil
		}
		env.vars[t.name] = &v
		return nil
	case *assignStmt:
		value := t.value
		if t.op != "=" {
			value = &binaryExpr{op: t.op[:len(t.op)-1], x: t.target, y: t.value, line: t.line}
		}
		v, err := in.eval(value, env)
		if err != nil {
			return err
		}
		switch target := t.target.(type) {
		case *identExpr:
			if cell, ok := env.vars[target.name]; ok {
				*cell = v
				return nil
			}
			if g, ok := in.globals[target.name]; ok {
				(*g)[0] = v
				return nil
			}
			return fmt.Errorf("undefined %s", target.name)
		case *indexExpr:
			idx, err := in.eval(target.index, env)
			if err != nil {
				return err
			}
			if a, ok := env.arrays[target.array]; ok {
				if int(idx) < 0 || int(idx) >= len(a) {
					return fmt.Errorf("index out of range")
				}
				a[idx] = v
				return nil
			}
			g := in.globals[target.array]
			if g == nil || int(idx) < 0 || int(idx) >= len(*g) {
				return fmt.Errorf("index out of range")
			}
			(*g)[idx] = v
			return nil
		}
		return fmt.Errorf("bad assign")
	case *ifStmt:
		c, err := in.eval(t.cond, env)
		if err != nil {
			return err
		}
		if c != 0 {
			return in.execStmt(t.then, env)
		}
		if t.els != nil {
			return in.execStmt(t.els, env)
		}
		return nil
	case *whileStmt:
		for {
			c, err := in.eval(t.cond, env)
			if err != nil {
				return err
			}
			if c == 0 {
				return nil
			}
			err = in.execStmt(t.body, env)
			if _, ok := err.(*interpBreakErr); ok {
				return nil
			}
			if _, ok := err.(*interpContinueErr); ok {
				continue
			}
			if err != nil {
				return err
			}
		}
	case *forStmt:
		if t.init != nil {
			if err := in.execStmt(t.init, env); err != nil {
				return err
			}
		}
		for {
			if t.cond != nil {
				c, err := in.eval(t.cond, env)
				if err != nil {
					return err
				}
				if c == 0 {
					return nil
				}
			}
			err := in.execStmt(t.body, env)
			if _, ok := err.(*interpBreakErr); ok {
				return nil
			}
			if _, okc := err.(*interpContinueErr); !okc && err != nil {
				return err
			}
			if t.post != nil {
				if err := in.execStmt(t.post, env); err != nil {
					return err
				}
			}
		}
	case *returnStmt:
		var v int32
		if t.value != nil {
			x, err := in.eval(t.value, env)
			if err != nil {
				return err
			}
			v = x
		}
		return &interpReturnErr{val: v}
	case *exprStmt:
		_, err := in.eval(t.e, env)
		return err
	case *breakStmt:
		return &interpBreakErr{}
	case *continueStmt:
		return &interpContinueErr{}
	}
	return fmt.Errorf("unhandled stmt %T", s)
}

func (in *interp) eval(e expr, env *frame) (int32, error) {
	if err := in.tick(); err != nil {
		return 0, err
	}
	switch t := e.(type) {
	case *numExpr:
		return int32(t.val), nil
	case *identExpr:
		if cell, ok := env.vars[t.name]; ok {
			return *cell, nil
		}
		if g, ok := in.globals[t.name]; ok {
			return (*g)[0], nil
		}
		return 0, fmt.Errorf("undefined %s", t.name)
	case *indexExpr:
		idx, err := in.eval(t.index, env)
		if err != nil {
			return 0, err
		}
		if a, ok := env.arrays[t.array]; ok {
			if int(idx) < 0 || int(idx) >= len(a) {
				return 0, fmt.Errorf("index out of range")
			}
			return a[idx], nil
		}
		g := in.globals[t.array]
		if g == nil || int(idx) < 0 || int(idx) >= len(*g) {
			return 0, fmt.Errorf("index out of range")
		}
		return (*g)[idx], nil
	case *unaryExpr:
		x, err := in.eval(t.x, env)
		if err != nil {
			return 0, err
		}
		switch t.op {
		case "-":
			return -x, nil
		case "!":
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		case "~":
			return ^x, nil
		}
	case *binaryExpr:
		if t.op == "&&" {
			x, err := in.eval(t.x, env)
			if err != nil || x == 0 {
				return 0, err
			}
			y, err := in.eval(t.y, env)
			if err != nil || y == 0 {
				return 0, err
			}
			return 1, nil
		}
		if t.op == "||" {
			x, err := in.eval(t.x, env)
			if err != nil {
				return 0, err
			}
			if x != 0 {
				return 1, nil
			}
			y, err := in.eval(t.y, env)
			if err != nil {
				return 0, err
			}
			if y != 0 {
				return 1, nil
			}
			return 0, nil
		}
		x, err := in.eval(t.x, env)
		if err != nil {
			return 0, err
		}
		y, err := in.eval(t.y, env)
		if err != nil {
			return 0, err
		}
		switch t.op {
		case "+":
			return x + y, nil
		case "-":
			return x - y, nil
		case "*":
			return x * y, nil
		case "/":
			if y == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return x / y, nil
		case "%":
			if y == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return x % y, nil
		case "&":
			return x & y, nil
		case "|":
			return x | y, nil
		case "^":
			return x ^ y, nil
		case "<<":
			return x << (uint32(y) & 31), nil
		case ">>":
			return x >> (uint32(y) & 31), nil
		case "<":
			return b2i(x < y), nil
		case ">":
			return b2i(x > y), nil
		case "<=":
			return b2i(x <= y), nil
		case ">=":
			return b2i(x >= y), nil
		case "==":
			return b2i(x == y), nil
		case "!=":
			return b2i(x != y), nil
		}
	case *callExpr:
		var args []int32
		for _, a := range t.args {
			v, err := in.eval(a, env)
			if err != nil {
				return 0, err
			}
			args = append(args, v)
		}
		if _, ok := builtins[t.name]; ok {
			return 0, nil // builtins return 0 and have no interpreted effect
		}
		return in.call(t.name, args)
	}
	return 0, fmt.Errorf("unhandled expr %T", e)
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
