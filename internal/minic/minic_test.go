package minic

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/mem"
)

// run compiles and executes src, returning the finished CPU.
func run(t *testing.T, src string) *cpu.CPU {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := mem.NewMemory()
	p.LoadInto(m)
	c := cpu.New(m, p.Entry, asm.DefaultStackTop)
	if _, err := c.Run(5_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !c.Done {
		t.Fatal("program did not exit")
	}
	return c
}

// exitCode compiles, runs and returns main's result (left in $s7 by the
// startup stub; the process exit code itself is 0 unless exit(n) is
// called).
func exitCode(t *testing.T, src string) uint32 {
	t.Helper()
	return run(t, src).Regs[23] // $s7
}

func TestReturnConstant(t *testing.T) {
	if got := exitCode(t, "int main() { return 42; }"); got != 42 {
		t.Fatalf("got %d", got)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want uint32
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 - 3 - 2", 5},
		{"100 / 7", 14},
		{"100 % 7", 2},
		{"-5 + 8", 3},
		{"6 & 3", 2},
		{"6 | 3", 7},
		{"6 ^ 3", 5},
		{"1 << 10", 1024},
		{"1024 >> 3", 128},
		{"~0 & 0xff", 255},
		{"!0", 1},
		{"!7", 0},
		{"3 < 4", 1},
		{"4 < 3", 0},
		{"4 <= 4", 1},
		{"5 > 4", 1},
		{"5 >= 6", 0},
		{"3 == 3", 1},
		{"3 != 3", 0},
		{"1 && 2", 1},
		{"1 && 0", 0},
		{"0 || 5", 1},
		{"0 || 0", 0},
		{"-8 >> 1 & 0xff", 0xfc}, // arithmetic shift, then mask
	}
	for _, c := range cases {
		src := "int main() { return " + c.expr + "; }"
		if got := exitCode(t, src); got != c.want {
			t.Errorf("%s = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestVariablesAndCompoundAssign(t *testing.T) {
	src := `
int main() {
    int x = 5;
    int y = 3;
    x += y;     // 8
    x *= 2;     // 16
    x -= 1;     // 15
    x /= 3;     // 5
    x %= 3;     // 2
    return x * 10 + y;
}`
	if got := exitCode(t, src); got != 23 {
		t.Fatalf("got %d", got)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
int main() {
    int sum = 0;
    int i;
    for (i = 1; i <= 100; i += 1) {
        if (i % 2 == 0) { sum += i; } else { sum -= 1; }
    }
    int j = 0;
    while (j < 5) { sum += 1000; j += 1; }
    return sum;
}`
	// even sum 2..100 = 2550, minus 50 odds, plus 5000.
	if got := exitCode(t, src); got != 2550-50+5000 {
		t.Fatalf("got %d", got)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	src := `
int counter = 7;
int table[8] = {1, 2, 3, 4};
int main() {
    counter += 1;
    table[5] = 10;
    int sum = 0;
    int i;
    for (i = 0; i < 8; i += 1) { sum += table[i]; }
    return sum * 100 + counter;
}`
	// table: 1+2+3+4+0+10+0+0 = 20; counter = 8.
	if got := exitCode(t, src); got != 2008 {
		t.Fatalf("got %d", got)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(15); }`
	if got := exitCode(t, src); got != 610 {
		t.Fatalf("fib(15) = %d", got)
	}
}

func TestFourArgsAndCallerSavedTemps(t *testing.T) {
	src := `
int combine(int a, int b, int c, int d) {
    return a * 1000 + b * 100 + c * 10 + d;
}
int main() {
    // Nested calls force temp saves across the inner call.
    return combine(1, 2, 3, 4) + combine(0, 0, 0, 1) * (2 + combine(0,0,0,0));
}`
	if got := exitCode(t, src); got != 1234+1*2 {
		t.Fatalf("got %d", got)
	}
}

func TestBuiltins(t *testing.T) {
	c := run(t, `
int main() {
    print_int(123);
    putc('\n');
    putc('x');
    return 0;
}`)
	if got := c.Output.String(); got != "123\nx" {
		t.Fatalf("output %q", got)
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	src := `
int hits = 0;
int bump() { hits += 1; return 1; }
int main() {
    0 && bump();        // must not call
    1 || bump();        // must not call
    1 && bump();        // calls
    0 || bump();        // calls
    return hits;
}`
	if got := exitCode(t, src); got != 2 {
		t.Fatalf("hits = %d", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"int main() { return x; }", "undefined variable"},
		{"int main() { y = 1; return 0; }", "undefined variable"},
		{"int main() { return f(); }", "undefined function"},
		{"int f(int a) { return a; } int main() { return f(1,2); }", "expects 1 arguments"},
		{"int main() { 1 = 2; return 0; }", "not assignable"},
		{"int g[3]; int main() { return g; }", "without index"},
		{"int main() {", "unterminated block"},
		{"int 3x;", "expected identifier"},
		{"int a[0]; int main(){return 0;}", "positive"},
		{"int main(){ int x @ 3; }", "unexpected character"},
		{"int f(){return 0;} int f(){return 0;} int main(){return 0;}", "redefined"},
		{"int print_int(){return 0;} int main(){return 0;}", "builtin"},
		{"int a; int a; int main(){return 0;}", "redefined"},
		{"int f(){return 0;}", "no main"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil {
			t.Errorf("%q: expected error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestChecksumConvention(t *testing.T) {
	// The startup stub leaves main's result in $s7 for the benchmark
	// harness.
	c := run(t, "int main() { return 0x1234; }")
	if c.Regs[23] != 0x1234 { // $s7
		t.Fatalf("$s7 = %#x", c.Regs[23])
	}
}

func TestComments(t *testing.T) {
	src := `
// line comment
int main() {
    /* block
       comment */
    return 9; // trailing
}`
	if got := exitCode(t, src); got != 9 {
		t.Fatalf("got %d", got)
	}
}

func TestHexAndCharLiterals(t *testing.T) {
	if got := exitCode(t, "int main() { return 0xFF - 'A'; }"); got != 255-65 {
		t.Fatalf("got %d", got)
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
int main() {
    int sum = 0;
    int i;
    for (i = 0; i < 100; i += 1) {
        if (i == 10) { break; }
        if (i % 2 == 1) { continue; }
        sum += i;    // 0+2+4+6+8 = 20
    }
    int j = 0;
    while (1) {
        j += 1;
        if (j >= 7) { break; }
    }
    return sum * 10 + j;
}`
	if got := exitCode(t, src); got != 207 {
		t.Fatalf("got %d", got)
	}
}

func TestBreakOutsideLoopError(t *testing.T) {
	if _, err := Compile("int main() { break; return 0; }"); err == nil || !strings.Contains(err.Error(), "break outside loop") {
		t.Fatalf("err: %v", err)
	}
	if _, err := Compile("int main() { continue; return 0; }"); err == nil || !strings.Contains(err.Error(), "continue outside loop") {
		t.Fatalf("err: %v", err)
	}
}

func TestLocalArrays(t *testing.T) {
	src := `
int sumbuf(int n) {
    int buf[8];
    int i;
    for (i = 0; i < n; i += 1) { buf[i] = i * i; }
    int s = 0;
    for (i = 0; i < 8; i += 1) { s += buf[i]; }   // zero-filled tail
    return s;
}
int main() {
    // Two frames with arrays: recursion must not alias them.
    return sumbuf(4) * 1000 + sumbuf(3);
}`
	// sumbuf(4): 0+1+4+9 = 14; sumbuf(3): 0+1+4 = 5.
	if got := exitCode(t, src); got != 14005 {
		t.Fatalf("got %d", got)
	}
}

func TestLocalArrayIsolationAcrossCalls(t *testing.T) {
	src := `
int fill(int v) {
    int a[4];
    a[0] = v;
    if (v > 0) { fill(v - 1); }
    return a[0];    // must still be v after the recursive call
}
int main() { return fill(9); }`
	if got := exitCode(t, src); got != 9 {
		t.Fatalf("got %d", got)
	}
}

func TestNestedLoopBreakInnermost(t *testing.T) {
	src := `
int main() {
    int hits = 0;
    int i;
    int j;
    for (i = 0; i < 4; i += 1) {
        for (j = 0; j < 100; j += 1) {
            if (j == 2) { break; }   // breaks inner only
            hits += 1;
        }
    }
    return hits;   // 4 * 2
}`
	if got := exitCode(t, src); got != 8 {
		t.Fatalf("got %d", got)
	}
}

func TestBitwiseCompoundAssign(t *testing.T) {
	src := `
int main() {
    int x = 0xF0;
    x |= 0x0F;   // 0xFF
    x &= 0x3C;   // 0x3C
    x ^= 0xFF;   // 0xC3
    return x;
}`
	if got := exitCode(t, src); got != 0xC3 {
		t.Fatalf("got %#x", got)
	}
}
