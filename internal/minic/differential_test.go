package minic

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/mem"
)

// Differential testing: random programs are executed by the reference AST
// interpreter and by the compiled binary on the CPU simulator; the results
// must agree bit-for-bit. This covers the lexer, parser, code generator,
// assembler and CPU in one loop.

// progGen emits random programs over a crash-free grammar: array indices
// are masked to stay in bounds, divisors are forced odd (never zero), and
// loops have fixed small trip counts.
type progGen struct {
	rng       *rand.Rand
	sb        strings.Builder
	locals    []string // assignable locals
	iters     []string // loop iterators: readable but never reassigned
	funcs     []string // callable helpers, in definition order
	loopDepth int
}

// anyVar picks a readable variable (local or iterator).
func (g *progGen) anyVar() (string, bool) {
	all := append(append([]string{}, g.locals...), g.iters...)
	if len(all) == 0 {
		return "", false
	}
	return all[g.rng.Intn(len(all))], true
}

func (g *progGen) expr(depth int) string {
	if depth <= 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(2048)-1024)
		case 1:
			if v, ok := g.anyVar(); ok {
				return v
			}
			return fmt.Sprintf("%d", g.rng.Intn(100))
		default:
			return fmt.Sprintf("g%d", g.rng.Intn(2))
		}
	}
	switch g.rng.Intn(12) {
	case 0, 1, 2:
		op := []string{"+", "-", "*", "&", "|", "^"}[g.rng.Intn(6)]
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
	case 3:
		op := []string{"<", "<=", ">", ">=", "==", "!="}[g.rng.Intn(6)]
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
	case 4:
		return fmt.Sprintf("(%s %s %d)", g.expr(depth-1),
			[]string{"<<", ">>"}[g.rng.Intn(2)], g.rng.Intn(31))
	case 5:
		// Safe division: odd divisor.
		return fmt.Sprintf("(%s %s (%s | 1))", g.expr(depth-1),
			[]string{"/", "%"}[g.rng.Intn(2)], g.expr(depth-1))
	case 6:
		return fmt.Sprintf("(%s%s)", []string{"-", "!", "~"}[g.rng.Intn(3)], g.expr(depth-1))
	case 7:
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("lbuf[%s & 7]", g.expr(depth-1))
		}
		return fmt.Sprintf("arr[%s & 15]", g.expr(depth-1))
	case 8:
		op := []string{"&&", "||"}[g.rng.Intn(2)]
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
	case 9:
		if len(g.funcs) > 0 {
			fn := g.funcs[g.rng.Intn(len(g.funcs))]
			return fmt.Sprintf("%s(%s)", fn, g.expr(depth-1))
		}
		return g.expr(depth - 1)
	default:
		return g.expr(depth - 1)
	}
}

func (g *progGen) stmt(depth, indent int) {
	pad := strings.Repeat("    ", indent)
	switch g.rng.Intn(6) {
	case 0: // global or array store
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&g.sb, "%sg%d = %s;\n", pad, g.rng.Intn(2), g.expr(2))
		} else {
			fmt.Fprintf(&g.sb, "%sarr[%s & 15] = %s;\n", pad, g.expr(1), g.expr(2))
		}
	case 1: // local update
		if len(g.locals) > 0 {
			l := g.locals[g.rng.Intn(len(g.locals))]
			op := []string{"=", "+=", "-=", "*="}[g.rng.Intn(4)]
			fmt.Fprintf(&g.sb, "%s%s %s %s;\n", pad, l, op, g.expr(2))
			return
		}
		fmt.Fprintf(&g.sb, "%sg0 += 1;\n", pad)
	case 2: // if/else, occasionally guarding a break/continue inside loops
		fmt.Fprintf(&g.sb, "%sif (%s) {\n", pad, g.expr(2))
		if g.loopDepth > 0 && g.rng.Intn(4) == 0 {
			fmt.Fprintf(&g.sb, "%s    %s;\n", pad,
				[]string{"break", "continue"}[g.rng.Intn(2)])
		} else if depth > 0 {
			g.stmt(depth-1, indent+1)
		}
		fmt.Fprintf(&g.sb, "%s} else {\n", pad)
		if depth > 0 {
			g.stmt(depth-1, indent+1)
		}
		fmt.Fprintf(&g.sb, "%s}\n", pad)
	case 3: // bounded loop over a fresh iterator
		if indent > 1 {
			// Declarations only at function-body level, so every local the
			// expression generator can reference is initialized on all
			// paths (the compiled frame slot would otherwise read stack
			// garbage the interpreter cannot model).
			fmt.Fprintf(&g.sb, "%sg%d -= %s;\n", pad, g.rng.Intn(2), g.expr(1))
			return
		}
		iter := fmt.Sprintf("it%d", len(g.iters))
		g.iters = append(g.iters, iter)
		fmt.Fprintf(&g.sb, "%sint %s;\n", pad, iter)
		fmt.Fprintf(&g.sb, "%sfor (%s = 0; %s < %d; %s += 1) {\n",
			pad, iter, iter, 2+g.rng.Intn(6), iter)
		g.loopDepth++
		if depth > 0 {
			g.stmt(depth-1, indent+1)
		} else {
			fmt.Fprintf(&g.sb, "%s    g0 += %s;\n", pad, iter)
		}
		g.loopDepth--
		fmt.Fprintf(&g.sb, "%s}\n", pad)
	case 4: // fresh local declaration
		if indent > 1 {
			fmt.Fprintf(&g.sb, "%sg%d |= %s;\n", pad, g.rng.Intn(2), g.expr(1))
			return
		}
		l := fmt.Sprintf("v%d", len(g.locals))
		init := g.expr(2) // generated before the name becomes referencable
		g.locals = append(g.locals, l)
		fmt.Fprintf(&g.sb, "%sint %s = %s;\n", pad, l, init)
	default:
		fmt.Fprintf(&g.sb, "%sg%d ^= %s;\n", pad, g.rng.Intn(2), g.expr(2))
	}
}

func (g *progGen) generate() string {
	g.sb.Reset()
	fmt.Fprintf(&g.sb, "int g0 = %d;\nint g1 = %d;\n", g.rng.Intn(100), g.rng.Intn(100)-50)
	g.sb.WriteString("int arr[16] = {3, 1, 4, 1, 5, 9, 2, 6};\n")

	// One or two non-recursive helpers.
	nHelpers := 1 + g.rng.Intn(2)
	for h := 0; h < nHelpers; h++ {
		name := fmt.Sprintf("helper%d", h)
		g.locals = []string{"x"}
		g.iters = nil
		g.loopDepth = 0
		fmt.Fprintf(&g.sb, "int %s(int x) {\n", name)
		g.sb.WriteString("    int lbuf[8];\n")
		fmt.Fprintf(&g.sb, "    lbuf[%d] = x;\n", g.rng.Intn(8))
		n := 1 + g.rng.Intn(3)
		for i := 0; i < n; i++ {
			g.stmt(1, 1)
		}
		fmt.Fprintf(&g.sb, "    return %s;\n}\n", g.expr(2))
		g.funcs = append(g.funcs, name)
	}

	g.locals = nil
	g.iters = nil
	g.loopDepth = 0
	g.sb.WriteString("int main() {\n")
	g.sb.WriteString("    int lbuf[8];\n")
	g.sb.WriteString("    lbuf[3] = 41;\n")
	n := 3 + g.rng.Intn(5)
	for i := 0; i < n; i++ {
		g.stmt(2, 1)
	}
	fmt.Fprintf(&g.sb, "    return %s + g0 * 31 + g1;\n}\n", g.expr(3))
	return g.sb.String()
}

// interpret runs the program through the reference interpreter.
func interpret(src string) (int32, error) {
	toks, err := lex(src)
	if err != nil {
		return 0, err
	}
	prog, err := parse(toks)
	if err != nil {
		return 0, err
	}
	in, err := newInterp(prog)
	if err != nil {
		return 0, err
	}
	return in.call("main", nil)
}

// compileAndRun executes the compiled program on the simulator.
func compileAndRun(src string) (int32, error) {
	p, err := Compile(src)
	if err != nil {
		return 0, err
	}
	m := mem.NewMemory()
	p.LoadInto(m)
	c := cpu.New(m, p.Entry, asm.DefaultStackTop)
	if _, err := c.Run(5_000_000); err != nil {
		return 0, err
	}
	if !c.Done {
		return 0, fmt.Errorf("did not finish")
	}
	return int32(c.Regs[23]), nil // $s7
}

func TestDifferentialRandomPrograms(t *testing.T) {
	count := 150
	if testing.Short() {
		count = 20
	}
	mismatches := 0
	for seed := 0; seed < count; seed++ {
		g := &progGen{rng: rand.New(rand.NewSource(int64(seed)))}
		src := g.generate()
		want, err := interpret(src)
		if err != nil {
			t.Fatalf("seed %d: interpreter: %v\nprogram:\n%s", seed, err, src)
		}
		got, err := compileAndRun(src)
		if err != nil {
			t.Fatalf("seed %d: compiled run: %v\nprogram:\n%s", seed, err, src)
		}
		if got != want {
			mismatches++
			t.Errorf("seed %d: compiled %d != interpreted %d\nprogram:\n%s", seed, got, want, src)
			if mismatches > 3 {
				t.Fatal("too many mismatches")
			}
		}
	}
}
