// Package minic is a small C-subset compiler targeting the simulator's
// MIPS-subset assembly — the stand-in for the paper's gcc toolchain (§3
// compiles Mediabench with gcc -O3). Kernels written in minic exhibit
// compiled-code character the hand assembly lacks: stack frames, calling
// conventions, register temporaries and spills.
//
// The language: 32-bit signed int is the only scalar type; global scalars
// and arrays (with initializer lists); functions with up to four int
// parameters; locals; the usual expression operators with C precedence and
// short-circuit && / ||; if/else, while, for, return; and three builtins
// (print_int, putc, exit) mapped to simulator syscalls.
package minic

import (
	"fmt"
	"strings"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // operators and punctuation
	tokKeyword
)

var keywords = map[string]bool{
	"int": true, "if": true, "else": true, "while": true,
	"for": true, "return": true, "break": true, "continue": true,
}

// token is one lexeme with its source position (1-based line and column).
type token struct {
	kind tokKind
	text string
	val  int64 // numbers
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.text)
}

// multi-character operators, longest first.
var punct2 = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
}

// lex splits source into tokens.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	lineStart := 0 // index of the first byte of the current line
	i := 0
	col := func(at int) int { return at - lineStart + 1 }
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
			lineStart = i
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, errAt(line, col(i), "unterminated comment")
			}
			body := src[i : i+2+end+2]
			if nl := strings.LastIndexByte(body, '\n'); nl >= 0 {
				line += strings.Count(body, "\n")
				lineStart = i + nl + 1
			}
			i += 2 + end + 2
		case isDigit(c):
			start := i
			base := 10
			if c == '0' && i+1 < len(src) && (src[i+1] == 'x' || src[i+1] == 'X') {
				base = 16
				i += 2
			}
			for i < len(src) && isNumChar(src[i], base) {
				i++
			}
			text := src[start:i]
			v, err := parseNum(text)
			if err != nil {
				return nil, errAt(line, col(start), "bad number %q", text)
			}
			toks = append(toks, token{kind: tokNumber, text: text, val: v, line: line, col: col(start)})
		case isIdentStart(c):
			start := i
			for i < len(src) && isIdentChar(src[i]) {
				i++
			}
			text := src[start:i]
			k := tokIdent
			if keywords[text] {
				k = tokKeyword
			}
			toks = append(toks, token{kind: k, text: text, line: line, col: col(start)})
		case c == '\'':
			// Character literal with the usual escapes.
			start := i
			j := i + 1
			if j >= len(src) {
				return nil, errAt(line, col(start), "unterminated char literal")
			}
			var v int64
			if src[j] == '\\' {
				if j+1 >= len(src) {
					return nil, errAt(line, col(start), "bad escape")
				}
				switch src[j+1] {
				case 'n':
					v = '\n'
				case 't':
					v = '\t'
				case '0':
					v = 0
				case '\\':
					v = '\\'
				case '\'':
					v = '\''
				default:
					return nil, errAt(line, col(start), "bad escape \\%c", src[j+1])
				}
				j += 2
			} else {
				v = int64(src[j])
				j++
			}
			if j >= len(src) || src[j] != '\'' {
				return nil, errAt(line, col(start), "unterminated char literal")
			}
			toks = append(toks, token{kind: tokNumber, text: "'c'", val: v, line: line, col: col(start)})
			i = j + 1
		default:
			matched := false
			for _, op := range punct2 {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, token{kind: tokPunct, text: op, line: line, col: col(i)})
					i += len(op)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.ContainsRune("+-*/%&|^~!<>=(){}[];,", rune(c)) {
				toks = append(toks, token{kind: tokPunct, text: string(c), line: line, col: col(i)})
				i++
				continue
			}
			return nil, errAt(line, col(i), "unexpected character %q", c)
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col(i)})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNumChar(c byte, base int) bool {
	if base == 16 {
		return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
	}
	return isDigit(c)
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool { return isIdentStart(c) || isDigit(c) }
