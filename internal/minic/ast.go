package minic

// AST node types. Every node records the source line for diagnostics.

// program is a parsed translation unit.
type program struct {
	globals []*globalDecl
	funcs   []*funcDecl
}

// globalDecl is `int name;`, `int name = n;` or `int name[N] = {...};`.
type globalDecl struct {
	name string
	size int // 0 for scalars, element count for arrays
	init []int64
	line int
}

// funcDecl is a function definition.
type funcDecl struct {
	name   string
	params []string
	body   *blockStmt
	line   int
}

// Statements.
type stmt interface{ stmtLine() int }

type blockStmt struct {
	stmts []stmt
	line  int
}

type declStmt struct { // int x; / int x = e; / int x[N];
	name string
	size int // 0 for scalars, element count for local arrays
	init expr
	line int
}

type assignStmt struct { // lvalue = e; also +=, -=, *=, /=, %=
	target expr // identExpr or indexExpr
	op     string
	value  expr
	line   int
}

type ifStmt struct {
	cond      expr
	then, els stmt
	line      int
}

type whileStmt struct {
	cond expr
	body stmt
	line int
}

type forStmt struct {
	init stmt // may be nil
	cond expr // may be nil (infinite)
	post stmt // may be nil
	body stmt
	line int
}

type returnStmt struct {
	value expr // may be nil
	line  int
}

type exprStmt struct {
	e    expr
	line int
}

type breakStmt struct{ line int }

type continueStmt struct{ line int }

func (s *blockStmt) stmtLine() int    { return s.line }
func (s *declStmt) stmtLine() int     { return s.line }
func (s *assignStmt) stmtLine() int   { return s.line }
func (s *ifStmt) stmtLine() int       { return s.line }
func (s *whileStmt) stmtLine() int    { return s.line }
func (s *forStmt) stmtLine() int      { return s.line }
func (s *returnStmt) stmtLine() int   { return s.line }
func (s *exprStmt) stmtLine() int     { return s.line }
func (s *breakStmt) stmtLine() int    { return s.line }
func (s *continueStmt) stmtLine() int { return s.line }

// Expressions.
type expr interface{ exprLine() int }

type numExpr struct {
	val  int64
	line int
}

type identExpr struct {
	name string
	line int
}

type indexExpr struct { // arr[e]
	array string
	index expr
	line  int
}

type callExpr struct {
	name string
	args []expr
	line int
}

type unaryExpr struct {
	op   string // - ! ~
	x    expr
	line int
}

type binaryExpr struct {
	op   string
	x, y expr
	line int
}

func (e *numExpr) exprLine() int    { return e.line }
func (e *identExpr) exprLine() int  { return e.line }
func (e *indexExpr) exprLine() int  { return e.line }
func (e *callExpr) exprLine() int   { return e.line }
func (e *unaryExpr) exprLine() int  { return e.line }
func (e *binaryExpr) exprLine() int { return e.line }
