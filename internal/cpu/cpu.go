// Package cpu implements the functional MIPS-subset interpreter that plays
// the role SimpleScalar's instruction interpreter plays in the paper (§3):
// it executes programs and emits one Exec record per retired instruction.
// Trace consumers (activity analysis, pipeline timing models) are driven
// from that stream.
//
// The machine has no branch delay slots (like SimpleScalar's PISA): the
// paper's pipelines stall fetch on every branch until resolution, so delay
// slots would only obscure the model.
package cpu

import (
	"bytes"
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Exec records everything the timing and activity models need to know about
// one retired instruction.
type Exec struct {
	PC   uint32
	Raw  uint32
	Inst isa.Inst

	// Register source operands, valid when the corresponding flag is set.
	SrcA, SrcB     uint32 // rs and rt values
	ReadsA, ReadsB bool

	// Destination register and the value written, when HasDest.
	Dest    isa.Reg
	Result  uint32
	HasDest bool

	// Data-memory access, when the instruction is a load or store.
	Addr     uint32
	MemWidth int    // bytes: 1, 2 or 4 (0 when no access)
	StoreVal uint32 // value stored (stores only)
	Loaded   uint32 // register value produced (loads only; equals Result)

	// Control flow.
	Taken  bool // branch taken / jump
	NextPC uint32
}

// Syscall numbers honoured by the interpreter ($v0 at a SYSCALL).
const (
	SysPrintInt    = 1
	SysPrintString = 4
	SysExit        = 10
	SysPutChar     = 11
	SysExit2       = 17
)

// CPU is the architected state plus the loaded memory image.
type CPU struct {
	Regs [32]uint32
	HI   uint32
	LO   uint32
	PC   uint32
	Mem  *mem.Memory

	// Done is set once an exit syscall retires; ExitCode carries its code.
	Done     bool
	ExitCode uint32

	// Output accumulates bytes written by print/putc syscalls, so kernel
	// results can be validated against reference implementations.
	Output bytes.Buffer

	// Retired counts executed instructions.
	Retired uint64
}

// New returns a CPU with the given memory image, entry point and stack
// pointer.
func New(m *mem.Memory, entry, sp uint32) *CPU {
	c := &CPU{Mem: m, PC: entry}
	c.Regs[isa.RegSP] = sp
	return c
}

func (c *CPU) reg(r isa.Reg) uint32 { return c.Regs[r&31] }

func (c *CPU) setReg(r isa.Reg, v uint32) {
	if r != isa.RegZero {
		c.Regs[r&31] = v
	}
}

// Step executes one instruction and returns its Exec record. Calling Step
// on a finished CPU returns an error.
func (c *CPU) Step() (Exec, error) {
	if c.Done {
		return Exec{}, fmt.Errorf("cpu: program has exited (code %d)", c.ExitCode)
	}
	if c.PC&3 != 0 {
		return Exec{}, fmt.Errorf("cpu: misaligned PC %#x", c.PC)
	}
	raw := c.Mem.Load32(c.PC)
	inst := isa.Decode(raw)
	if err := inst.Validate(); err != nil {
		return Exec{}, fmt.Errorf("cpu: at PC %#x: %w", c.PC, err)
	}

	e := Exec{PC: c.PC, Raw: raw, Inst: inst, NextPC: c.PC + 4}
	if inst.ReadsRs() {
		e.SrcA, e.ReadsA = c.reg(inst.Rs), true
	}
	if inst.ReadsRt() {
		e.SrcB, e.ReadsB = c.reg(inst.Rt), true
	}
	a, b := e.SrcA, e.SrcB
	simm := uint32(int32(inst.Imm))
	zimm := uint32(uint16(inst.Imm))

	setDest := func(r isa.Reg, v uint32) {
		if r != isa.RegZero {
			e.Dest, e.Result, e.HasDest = r, v, true
		}
		c.setReg(r, v)
	}

	switch inst.Op {
	case isa.OpSpecial:
		if err := c.execSpecial(inst, a, b, &e, setDest); err != nil {
			return Exec{}, err
		}
	case isa.OpRegimm:
		taken := false
		switch uint8(inst.Rt) {
		case isa.RegimmBLTZ:
			taken = int32(a) < 0
		case isa.RegimmBGEZ:
			taken = int32(a) >= 0
		}
		if taken {
			e.Taken, e.NextPC = true, inst.BranchTarget(e.PC)
		}
	case isa.OpJ:
		e.Taken, e.NextPC = true, inst.JumpTarget(e.PC)
	case isa.OpJAL:
		setDest(isa.RegRA, e.PC+4)
		e.Taken, e.NextPC = true, inst.JumpTarget(e.PC)
	case isa.OpBEQ:
		if a == b {
			e.Taken, e.NextPC = true, inst.BranchTarget(e.PC)
		}
	case isa.OpBNE:
		if a != b {
			e.Taken, e.NextPC = true, inst.BranchTarget(e.PC)
		}
	case isa.OpBLEZ:
		if int32(a) <= 0 {
			e.Taken, e.NextPC = true, inst.BranchTarget(e.PC)
		}
	case isa.OpBGTZ:
		if int32(a) > 0 {
			e.Taken, e.NextPC = true, inst.BranchTarget(e.PC)
		}
	case isa.OpADDI, isa.OpADDIU:
		// Overflow traps are not modelled; ADDI behaves as ADDIU.
		setDest(inst.Rt, a+simm)
	case isa.OpSLTI:
		var v uint32
		if int32(a) < int32(simm) {
			v = 1
		}
		setDest(inst.Rt, v)
	case isa.OpSLTIU:
		var v uint32
		if a < simm {
			v = 1
		}
		setDest(inst.Rt, v)
	case isa.OpANDI:
		setDest(inst.Rt, a&zimm)
	case isa.OpORI:
		setDest(inst.Rt, a|zimm)
	case isa.OpXORI:
		setDest(inst.Rt, a^zimm)
	case isa.OpLUI:
		setDest(inst.Rt, zimm<<16)
	case isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLW:
		addr := a + simm
		e.Addr, e.MemWidth = addr, inst.MemBytes()
		if err := checkAlign(addr, e.MemWidth, e.PC); err != nil {
			return Exec{}, err
		}
		var v uint32
		switch inst.Op {
		case isa.OpLB:
			v = uint32(int32(int8(c.Mem.Load8(addr))))
		case isa.OpLBU:
			v = uint32(c.Mem.Load8(addr))
		case isa.OpLH:
			v = uint32(int32(int16(c.Mem.Load16(addr))))
		case isa.OpLHU:
			v = uint32(c.Mem.Load16(addr))
		case isa.OpLW:
			v = c.Mem.Load32(addr)
		}
		e.Loaded = v
		setDest(inst.Rt, v)
	case isa.OpSB, isa.OpSH, isa.OpSW:
		addr := a + simm
		e.Addr, e.MemWidth = addr, inst.MemBytes()
		if err := checkAlign(addr, e.MemWidth, e.PC); err != nil {
			return Exec{}, err
		}
		e.StoreVal = b
		switch inst.Op {
		case isa.OpSB:
			c.Mem.Store8(addr, byte(b))
		case isa.OpSH:
			c.Mem.Store16(addr, uint16(b))
		case isa.OpSW:
			c.Mem.Store32(addr, b)
		}
	default:
		return Exec{}, fmt.Errorf("cpu: unimplemented opcode %#x at PC %#x", uint8(inst.Op), e.PC)
	}

	c.PC = e.NextPC
	c.Retired++
	return e, nil
}

func (c *CPU) execSpecial(inst isa.Inst, a, b uint32, e *Exec, setDest func(isa.Reg, uint32)) error {
	switch inst.Funct {
	case isa.FnSLL:
		setDest(inst.Rd, b<<inst.Shamt)
	case isa.FnSRL:
		setDest(inst.Rd, b>>inst.Shamt)
	case isa.FnSRA:
		setDest(inst.Rd, uint32(int32(b)>>inst.Shamt))
	case isa.FnSLLV:
		setDest(inst.Rd, b<<(a&31))
	case isa.FnSRLV:
		setDest(inst.Rd, b>>(a&31))
	case isa.FnSRAV:
		setDest(inst.Rd, uint32(int32(b)>>(a&31)))
	case isa.FnJR:
		if a&3 != 0 {
			return fmt.Errorf("cpu: jr to misaligned %#x at PC %#x", a, e.PC)
		}
		e.Taken, e.NextPC = true, a
	case isa.FnJALR:
		if a&3 != 0 {
			return fmt.Errorf("cpu: jalr to misaligned %#x at PC %#x", a, e.PC)
		}
		setDest(inst.Rd, e.PC+4)
		e.Taken, e.NextPC = true, a
	case isa.FnSYSCALL:
		return c.syscall(e)
	case isa.FnBREAK:
		return fmt.Errorf("cpu: BREAK at PC %#x", e.PC)
	case isa.FnMFHI:
		setDest(inst.Rd, c.HI)
	case isa.FnMTHI:
		c.HI = a
	case isa.FnMFLO:
		setDest(inst.Rd, c.LO)
	case isa.FnMTLO:
		c.LO = a
	case isa.FnMULT:
		p := int64(int32(a)) * int64(int32(b))
		c.HI, c.LO = uint32(uint64(p)>>32), uint32(uint64(p))
	case isa.FnMULTU:
		p := uint64(a) * uint64(b)
		c.HI, c.LO = uint32(p>>32), uint32(p)
	case isa.FnDIV:
		if b != 0 {
			c.LO = uint32(int32(a) / int32(b))
			c.HI = uint32(int32(a) % int32(b))
		} else {
			c.LO, c.HI = ^uint32(0), a
		}
	case isa.FnDIVU:
		if b != 0 {
			c.LO, c.HI = a/b, a%b
		} else {
			c.LO, c.HI = ^uint32(0), a
		}
	case isa.FnADD, isa.FnADDU:
		setDest(inst.Rd, a+b)
	case isa.FnSUB, isa.FnSUBU:
		setDest(inst.Rd, a-b)
	case isa.FnAND:
		setDest(inst.Rd, a&b)
	case isa.FnOR:
		setDest(inst.Rd, a|b)
	case isa.FnXOR:
		setDest(inst.Rd, a^b)
	case isa.FnNOR:
		setDest(inst.Rd, ^(a | b))
	case isa.FnSLT:
		var v uint32
		if int32(a) < int32(b) {
			v = 1
		}
		setDest(inst.Rd, v)
	case isa.FnSLTU:
		var v uint32
		if a < b {
			v = 1
		}
		setDest(inst.Rd, v)
	default:
		return fmt.Errorf("cpu: unimplemented funct %#x at PC %#x", uint8(inst.Funct), e.PC)
	}
	return nil
}

func (c *CPU) syscall(e *Exec) error {
	switch c.reg(isa.RegV0) {
	case SysPrintInt:
		fmt.Fprintf(&c.Output, "%d", int32(c.reg(isa.RegA0)))
	case SysPrintString:
		addr := c.reg(isa.RegA0)
		for i := 0; i < 1<<20; i++ {
			ch := c.Mem.Load8(addr)
			if ch == 0 {
				return nil
			}
			c.Output.WriteByte(ch)
			addr++
		}
		return fmt.Errorf("cpu: unterminated string in print syscall at PC %#x", e.PC)
	case SysExit:
		c.Done, c.ExitCode = true, 0
	case SysPutChar:
		c.Output.WriteByte(byte(c.reg(isa.RegA0)))
	case SysExit2:
		c.Done, c.ExitCode = true, c.reg(isa.RegA0)
	default:
		return fmt.Errorf("cpu: unknown syscall %d at PC %#x", c.reg(isa.RegV0), e.PC)
	}
	return nil
}

func checkAlign(addr uint32, width int, pc uint32) error {
	if addr&(uint32(width)-1) != 0 {
		return fmt.Errorf("cpu: misaligned %d-byte access to %#x at PC %#x", width, addr, pc)
	}
	return nil
}

// Run executes until exit or until max instructions retire, returning the
// number retired. A max of 0 means no limit.
func (c *CPU) Run(max uint64) (uint64, error) {
	var n uint64
	for !c.Done {
		if max > 0 && n >= max {
			break
		}
		if _, err := c.Step(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
