package cpu

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// execOne builds a one-instruction machine, runs the raw word with the
// given initial register file, and returns the CPU and Exec record.
func execOne(t *testing.T, raw uint32, setup func(c *CPU)) (*CPU, Exec) {
	t.Helper()
	m := mem.NewMemory()
	m.Store32(0x0040_0000, raw)
	c := New(m, 0x0040_0000, 0x7fff_f000)
	if setup != nil {
		setup(c)
	}
	e, err := c.Step()
	if err != nil {
		t.Fatalf("step %s: %v", isa.Decode(raw).Disassemble(0x400000), err)
	}
	return c, e
}

// Property: every R-format ALU operation matches its Go reference over
// random operands.
func TestRFormatSemanticsProperty(t *testing.T) {
	refs := map[isa.Funct]func(a, b uint32) uint32{
		isa.FnADDU: func(a, b uint32) uint32 { return a + b },
		isa.FnADD:  func(a, b uint32) uint32 { return a + b },
		isa.FnSUBU: func(a, b uint32) uint32 { return a - b },
		isa.FnSUB:  func(a, b uint32) uint32 { return a - b },
		isa.FnAND:  func(a, b uint32) uint32 { return a & b },
		isa.FnOR:   func(a, b uint32) uint32 { return a | b },
		isa.FnXOR:  func(a, b uint32) uint32 { return a ^ b },
		isa.FnNOR:  func(a, b uint32) uint32 { return ^(a | b) },
		isa.FnSLT: func(a, b uint32) uint32 {
			if int32(a) < int32(b) {
				return 1
			}
			return 0
		},
		isa.FnSLTU: func(a, b uint32) uint32 {
			if a < b {
				return 1
			}
			return 0
		},
		isa.FnSLLV: func(a, b uint32) uint32 { return b << (a & 31) },
		isa.FnSRLV: func(a, b uint32) uint32 { return b >> (a & 31) },
		isa.FnSRAV: func(a, b uint32) uint32 { return uint32(int32(b) >> (a & 31)) },
	}
	rng := rand.New(rand.NewSource(7))
	for fn, ref := range refs {
		for i := 0; i < 200; i++ {
			a, b := rng.Uint32(), rng.Uint32()
			c, e := execOne(t, isa.EncodeR(fn, isa.RegT0, isa.RegT1, isa.RegT2, 0), func(c *CPU) {
				c.Regs[isa.RegT0] = a
				c.Regs[isa.RegT1] = b
			})
			want := ref(a, b)
			if c.Regs[isa.RegT2] != want {
				t.Fatalf("%s a=%#x b=%#x: got %#x want %#x",
					isa.FunctName(fn), a, b, c.Regs[isa.RegT2], want)
			}
			if e.HasDest && e.Result != want {
				t.Fatalf("%s: exec record result %#x != %#x", isa.FunctName(fn), e.Result, want)
			}
		}
	}
}

// Property: immediate shifts match reference for all shamt values.
func TestShiftImmSemanticsExhaustive(t *testing.T) {
	vals := []uint32{0, 1, 0x80000000, 0xffffffff, 0x12345678, 0xdeadbeef}
	for _, v := range vals {
		for sh := uint8(0); sh < 32; sh++ {
			checks := []struct {
				fn   isa.Funct
				want uint32
			}{
				{isa.FnSLL, v << sh},
				{isa.FnSRL, v >> sh},
				{isa.FnSRA, uint32(int32(v) >> sh)},
			}
			for _, c := range checks {
				cpu, _ := execOne(t, isa.EncodeR(c.fn, 0, isa.RegT1, isa.RegT2, sh), func(m *CPU) {
					m.Regs[isa.RegT1] = v
				})
				if cpu.Regs[isa.RegT2] != c.want {
					t.Fatalf("%s %#x by %d: got %#x want %#x",
						isa.FunctName(c.fn), v, sh, cpu.Regs[isa.RegT2], c.want)
				}
			}
		}
	}
}

// Property: I-format ALU ops match reference over random operands.
func TestIFormatSemanticsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		a := rng.Uint32()
		imm := int16(rng.Uint32())
		simm := uint32(int32(imm))
		zimm := uint32(uint16(imm))
		checks := []struct {
			op   isa.Opcode
			want uint32
		}{
			{isa.OpADDIU, a + simm},
			{isa.OpADDI, a + simm},
			{isa.OpANDI, a & zimm},
			{isa.OpORI, a | zimm},
			{isa.OpXORI, a ^ zimm},
			{isa.OpLUI, zimm << 16},
		}
		if int32(a) < int32(simm) {
			checks = append(checks, struct {
				op   isa.Opcode
				want uint32
			}{isa.OpSLTI, 1})
		} else {
			checks = append(checks, struct {
				op   isa.Opcode
				want uint32
			}{isa.OpSLTI, 0})
		}
		for _, c := range checks {
			cpu, _ := execOne(t, isa.EncodeI(c.op, isa.RegT0, isa.RegT2, imm), func(m *CPU) {
				m.Regs[isa.RegT0] = a
			})
			if cpu.Regs[isa.RegT2] != c.want {
				t.Fatalf("op %#x a=%#x imm=%d: got %#x want %#x",
					uint8(c.op), a, imm, cpu.Regs[isa.RegT2], c.want)
			}
		}
	}
}

// Branch direction truth table over signed corner values.
func TestBranchSemanticsCorners(t *testing.T) {
	vals := []uint32{0, 1, 0x7fffffff, 0x80000000, 0xffffffff}
	for _, a := range vals {
		for _, b := range vals {
			checks := []struct {
				raw   uint32
				taken bool
				name  string
			}{
				{isa.EncodeI(isa.OpBEQ, isa.RegT0, isa.RegT1, 4), a == b, "beq"},
				{isa.EncodeI(isa.OpBNE, isa.RegT0, isa.RegT1, 4), a != b, "bne"},
				{isa.EncodeI(isa.OpBLEZ, isa.RegT0, 0, 4), int32(a) <= 0, "blez"},
				{isa.EncodeI(isa.OpBGTZ, isa.RegT0, 0, 4), int32(a) > 0, "bgtz"},
				{isa.EncodeRegimm(isa.RegimmBLTZ, isa.RegT0, 4), int32(a) < 0, "bltz"},
				{isa.EncodeRegimm(isa.RegimmBGEZ, isa.RegT0, 4), int32(a) >= 0, "bgez"},
			}
			for _, c := range checks {
				_, e := execOne(t, c.raw, func(m *CPU) {
					m.Regs[isa.RegT0] = a
					m.Regs[isa.RegT1] = b
				})
				if e.Taken != c.taken {
					t.Fatalf("%s a=%#x b=%#x: taken=%v want %v", c.name, a, b, e.Taken, c.taken)
				}
				wantNext := uint32(0x0040_0004)
				if c.taken {
					wantNext = 0x0040_0004 + 16
				}
				if e.NextPC != wantNext {
					t.Fatalf("%s: NextPC %#x want %#x", c.name, e.NextPC, wantNext)
				}
			}
		}
	}
}

// Loads: width, sign extension and Exec record fields over random memory.
func TestLoadSemanticsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		word := rng.Uint32()
		base := uint32(0x1000_0100)
		checks := []struct {
			op    isa.Opcode
			off   int16
			want  uint32
			width int
		}{
			{isa.OpLW, 0, word, 4},
			{isa.OpLH, 0, uint32(int32(int16(word))), 2},
			{isa.OpLH, 2, uint32(int32(int16(word >> 16))), 2},
			{isa.OpLHU, 0, uint32(uint16(word)), 2},
			{isa.OpLB, 0, uint32(int32(int8(word))), 1},
			{isa.OpLB, 3, uint32(int32(int8(word >> 24))), 1},
			{isa.OpLBU, 1, uint32(uint8(word >> 8)), 1},
		}
		for _, c := range checks {
			m := mem.NewMemory()
			m.Store32(0x0040_0000, isa.EncodeI(c.op, isa.RegT0, isa.RegT2, c.off))
			m.Store32(base, word)
			cpu := New(m, 0x0040_0000, 0x7fff_f000)
			cpu.Regs[isa.RegT0] = base
			e, err := cpu.Step()
			if err != nil {
				t.Fatal(err)
			}
			if cpu.Regs[isa.RegT2] != c.want {
				t.Fatalf("op %#x word=%#x off=%d: got %#x want %#x",
					uint8(c.op), word, c.off, cpu.Regs[isa.RegT2], c.want)
			}
			if e.MemWidth != c.width || e.Addr != base+uint32(c.off) {
				t.Fatalf("op %#x exec record: width %d addr %#x", uint8(c.op), e.MemWidth, e.Addr)
			}
		}
	}
}

// Stores only touch their width.
func TestStoreWidths(t *testing.T) {
	m := mem.NewMemory()
	m.Store32(0x0040_0000, isa.EncodeI(isa.OpSB, isa.RegT0, isa.RegT1, 1))
	m.Store32(0x1000_0000, 0xaaaaaaaa)
	c := New(m, 0x0040_0000, 0x7fff_f000)
	c.Regs[isa.RegT0] = 0x1000_0000
	c.Regs[isa.RegT1] = 0x11223344
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if got := m.Load32(0x1000_0000); got != 0xaaaa44aa {
		t.Fatalf("sb result: %#x", got)
	}
	m.Store32(0x0040_0004, isa.EncodeI(isa.OpSH, isa.RegT0, isa.RegT1, 2))
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if got := m.Load32(0x1000_0000); got != 0x3344_44aa {
		t.Fatalf("sh result: %#x", got)
	}
}

// Jump-and-link writes the return address and redirects.
func TestJumpSemantics(t *testing.T) {
	_, e := execOne(t, isa.EncodeJ(isa.OpJAL, (0x0040_0100)>>2), nil)
	if !e.Taken || e.NextPC != 0x0040_0100 {
		t.Fatalf("jal: %+v", e)
	}
	if !e.HasDest || e.Dest != isa.RegRA || e.Result != 0x0040_0004 {
		t.Fatalf("jal link: %+v", e)
	}
	c, e := execOne(t, isa.EncodeR(isa.FnJALR, isa.RegT0, 0, isa.RegT3, 0), func(m *CPU) {
		m.Regs[isa.RegT0] = 0x0040_0200
	})
	if e.NextPC != 0x0040_0200 || c.Regs[isa.RegT3] != 0x0040_0004 {
		t.Fatalf("jalr: %+v", e)
	}
}

// MULT/DIV corner cases including INT_MIN.
func TestMultDivCorners(t *testing.T) {
	c, _ := execOne(t, isa.EncodeR(isa.FnMULT, isa.RegT0, isa.RegT1, 0, 0), func(m *CPU) {
		m.Regs[isa.RegT0] = 0x80000000 // INT_MIN
		m.Regs[isa.RegT1] = 0xffffffff // -1
	})
	// INT_MIN * -1 = 2^31: HI=0, LO=0x80000000.
	if c.HI != 0 || c.LO != 0x80000000 {
		t.Fatalf("INT_MIN*-1: hi=%#x lo=%#x", c.HI, c.LO)
	}
	// Signed division INT_MIN / -1 overflows; MIPS leaves it undefined but
	// must not trap the simulator.
	m := mem.NewMemory()
	m.Store32(0x0040_0000, isa.EncodeR(isa.FnDIV, isa.RegT0, isa.RegT1, 0, 0))
	cc := New(m, 0x0040_0000, 0x7fff_f000)
	cc.Regs[isa.RegT0] = 0x80000000
	cc.Regs[isa.RegT1] = 0xffffffff
	if _, err := cc.Step(); err != nil {
		t.Fatalf("INT_MIN/-1 must not fault the host: %v", err)
	}
}

func TestDivOverflowGoSemantics(t *testing.T) {
	// Document the choice: INT_MIN / -1 wraps to INT_MIN (hardware-typical).
	m := mem.NewMemory()
	m.Store32(0x0040_0000, isa.EncodeR(isa.FnDIV, isa.RegT0, isa.RegT1, 0, 0))
	c := New(m, 0x0040_0000, 0x7fff_f000)
	c.Regs[isa.RegT0] = 0x80000000
	c.Regs[isa.RegT1] = 0xffffffff
	_, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if c.LO != 0x80000000 || c.HI != 0 {
		t.Fatalf("INT_MIN/-1: lo=%#x hi=%#x", c.LO, c.HI)
	}
}
