package cpu

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

// run assembles src, executes it to completion and returns the CPU.
func run(t *testing.T, src string, maxInsts uint64) *CPU {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.NewMemory()
	p.LoadInto(m)
	c := New(m, p.Entry, asm.DefaultStackTop)
	if _, err := c.Run(maxInsts); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !c.Done {
		t.Fatalf("program did not exit within %d instructions", maxInsts)
	}
	return c
}

const exitSeq = `
    li $v0, 10
    syscall
`

func TestArithmetic(t *testing.T) {
	c := run(t, `
main:
    li   $t0, 6
    li   $t1, 7
    addu $t2, $t0, $t1    # 13
    subu $t3, $t0, $t1    # -1
    and  $t4, $t0, $t1    # 6
    or   $t5, $t0, $t1    # 7
    xor  $t6, $t0, $t1    # 1
    nor  $t7, $t0, $t1    # ^7
    slt  $s0, $t1, $t0    # 0
    slt  $s1, $t0, $t1    # 1
    sltu $s2, $t0, $t1    # 1
`+exitSeq, 100)
	want := map[isa.Reg]uint32{
		isa.RegT2: 13, isa.RegT3: ^uint32(0), isa.RegT4: 6, isa.RegT5: 7,
		isa.RegT6: 1, isa.RegT7: ^uint32(7), isa.RegS0: 0, isa.RegS1: 1, isa.RegS2: 1,
	}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("%s = %#x, want %#x", r, c.Regs[r], v)
		}
	}
}

func TestShifts(t *testing.T) {
	c := run(t, `
main:
    li   $t0, -8
    sll  $t1, $t0, 2      # -32
    srl  $t2, $t0, 2      # logical
    sra  $t3, $t0, 2      # -2
    li   $t4, 3
    sllv $t5, $t0, $t4    # -64
    srav $t6, $t0, $t4    # -1
`+exitSeq, 100)
	if got := int32(c.Regs[isa.RegT1]); got != -32 {
		t.Errorf("sll: %d", got)
	}
	if got := c.Regs[isa.RegT2]; got != uint32(0xfffffff8)>>2 {
		t.Errorf("srl: %#x", got)
	}
	if got := int32(c.Regs[isa.RegT3]); got != -2 {
		t.Errorf("sra: %d", got)
	}
	if got := int32(c.Regs[isa.RegT5]); got != -64 {
		t.Errorf("sllv: %d", got)
	}
	if got := int32(c.Regs[isa.RegT6]); got != -1 {
		t.Errorf("srav: %d", got)
	}
}

func TestZeroRegisterIsImmutable(t *testing.T) {
	c := run(t, `
main:
    li   $t0, 5
    addu $zero, $t0, $t0
    move $t1, $zero
`+exitSeq, 100)
	if c.Regs[isa.RegZero] != 0 || c.Regs[isa.RegT1] != 0 {
		t.Fatal("$zero must stay zero")
	}
}

func TestLoopSum(t *testing.T) {
	// Sum 1..100 = 5050.
	c := run(t, `
main:
    li   $t0, 100
    li   $t1, 0
loop:
    addu $t1, $t1, $t0
    addiu $t0, $t0, -1
    bgtz $t0, loop
`+exitSeq, 1000)
	if c.Regs[isa.RegT1] != 5050 {
		t.Fatalf("sum: %d", c.Regs[isa.RegT1])
	}
}

func TestMemoryOps(t *testing.T) {
	c := run(t, `
main:
    la   $s0, data
    lw   $t0, 0($s0)       # 0x11223344
    lh   $t1, 4($s0)       # -2 (0xfffe)
    lhu  $t2, 4($s0)       # 0xfffe
    lb   $t3, 6($s0)       # -1
    lbu  $t4, 6($s0)       # 0xff
    sw   $t0, 8($s0)
    lw   $t5, 8($s0)
    sb   $t0, 12($s0)
    lbu  $t6, 12($s0)      # 0x44
    sh   $t0, 14($s0)
    lhu  $t7, 14($s0)      # 0x3344
`+exitSeq+`
.data
data:
    .word 0x11223344
    .half 0xfffe
    .byte 0xff, 0
    .space 12
`, 100)
	checks := map[isa.Reg]uint32{
		isa.RegT0: 0x11223344,
		isa.RegT1: 0xfffffffe,
		isa.RegT2: 0xfffe,
		isa.RegT3: 0xffffffff,
		isa.RegT4: 0xff,
		isa.RegT5: 0x11223344,
		isa.RegT6: 0x44,
		isa.RegT7: 0x3344,
	}
	for r, v := range checks {
		if c.Regs[r] != v {
			t.Errorf("%s = %#x, want %#x", r, c.Regs[r], v)
		}
	}
}

func TestBranchVariants(t *testing.T) {
	c := run(t, `
main:
    li $s0, 0          # accumulates taken-branch markers
    li $t0, -5
    li $t1, 5
    bltz $t0, a
    j fail
a:  ori $s0, $s0, 1
    bgez $t1, b
    j fail
b:  ori $s0, $s0, 2
    blez $zero, c
    j fail
c:  ori $s0, $s0, 4
    bgtz $t1, d
    j fail
d:  ori $s0, $s0, 8
    beq $t0, $t0, e
    j fail
e:  ori $s0, $s0, 16
    bne $t0, $t1, f
    j fail
f:  ori $s0, $s0, 32
`+exitSeq+`
fail:
    li $v0, 17
    li $a0, 1
    syscall
`, 200)
	if c.Regs[isa.RegS0] != 63 {
		t.Fatalf("branch markers: %#b", c.Regs[isa.RegS0])
	}
	if c.ExitCode != 0 {
		t.Fatalf("exit code: %d", c.ExitCode)
	}
}

func TestJalAndFunctionCall(t *testing.T) {
	c := run(t, `
main:
    li  $a0, 21
    jal double
    move $s0, $v1
`+exitSeq+`
double:
    addu $v1, $a0, $a0
    jr  $ra
`, 100)
	if c.Regs[isa.RegS0] != 42 {
		t.Fatalf("call result: %d", c.Regs[isa.RegS0])
	}
}

func TestJalr(t *testing.T) {
	c := run(t, `
main:
    la   $t9, target
    jalr $t9
    j    done
target:
    li   $s0, 99
    jr   $ra
done:
`+exitSeq, 100)
	if c.Regs[isa.RegS0] != 99 {
		t.Fatalf("jalr result: %d", c.Regs[isa.RegS0])
	}
}

func TestMultDiv(t *testing.T) {
	c := run(t, `
main:
    li    $t0, -6
    li    $t1, 7
    mult  $t0, $t1
    mflo  $s0          # -42
    mfhi  $s1          # sign bits
    li    $t2, 43
    li    $t3, 5
    div   $t2, $t3
    mflo  $s2          # 8
    mfhi  $s3          # 3
    multu $t1, $t1
    mflo  $s4          # 49
`+exitSeq, 100)
	if got := int32(c.Regs[isa.RegS0]); got != -42 {
		t.Errorf("mult lo: %d", got)
	}
	if got := c.Regs[isa.RegS1]; got != 0xffffffff {
		t.Errorf("mult hi: %#x", got)
	}
	if c.Regs[isa.RegS2] != 8 || c.Regs[isa.RegS3] != 3 {
		t.Errorf("div: %d r %d", c.Regs[isa.RegS2], c.Regs[isa.RegS3])
	}
	if c.Regs[isa.RegS4] != 49 {
		t.Errorf("multu: %d", c.Regs[isa.RegS4])
	}
}

func TestMthiMtlo(t *testing.T) {
	c := run(t, `
main:
    li   $t0, 123
    mtlo $t0
    mthi $t0
    mflo $s0
    mfhi $s1
`+exitSeq, 100)
	if c.Regs[isa.RegS0] != 123 || c.Regs[isa.RegS1] != 123 {
		t.Fatal("mthi/mtlo roundtrip failed")
	}
}

func TestSyscallOutput(t *testing.T) {
	c := run(t, `
main:
    li $v0, 1
    li $a0, -37
    syscall
    li $v0, 11
    li $a0, '\n'
    syscall
    li $v0, 4
    la $a0, msg
    syscall
`+exitSeq+`
.data
msg: .asciiz "ok"
`, 100)
	if got := c.Output.String(); got != "-37\nok" {
		t.Fatalf("output: %q", got)
	}
}

func TestExitCode(t *testing.T) {
	c := run(t, `
main:
    li $a0, 3
    li $v0, 17
    syscall
`, 100)
	if c.ExitCode != 3 {
		t.Fatalf("exit code: %d", c.ExitCode)
	}
}

func TestExecRecordFields(t *testing.T) {
	p, err := asm.Assemble(`
main:
    li   $t0, 300
    li   $t1, 4
    addu $t2, $t0, $t1
    sw   $t2, 0($sp)
    lw   $t3, 0($sp)
    beq  $t2, $t3, done
    nop
done:
` + exitSeq)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory()
	p.LoadInto(m)
	c := New(m, p.Entry, asm.DefaultStackTop)

	var recs []Exec
	for !c.Done {
		e, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, e)
	}
	// recs: li(addiu), li(addiu), addu, sw, lw, beq, li, syscall
	addu := recs[2]
	if !addu.ReadsA || !addu.ReadsB || addu.SrcA != 300 || addu.SrcB != 4 {
		t.Errorf("addu sources: %+v", addu)
	}
	if !addu.HasDest || addu.Dest != isa.RegT2 || addu.Result != 304 {
		t.Errorf("addu dest: %+v", addu)
	}
	sw := recs[3]
	if sw.MemWidth != 4 || sw.Addr != asm.DefaultStackTop || sw.StoreVal != 304 {
		t.Errorf("sw record: %+v", sw)
	}
	if sw.HasDest {
		t.Error("sw must not write a register")
	}
	lw := recs[4]
	if lw.Loaded != 304 || lw.Result != 304 || lw.MemWidth != 4 {
		t.Errorf("lw record: %+v", lw)
	}
	beq := recs[5]
	if !beq.Taken {
		t.Error("beq should be taken")
	}
	if beq.NextPC != beq.Inst.BranchTarget(beq.PC) {
		t.Errorf("beq target: %#x", beq.NextPC)
	}
}

func TestErrorsSurface(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"main:\n lw $t0, 2($zero)\n", "misaligned"},
		{"main:\n li $v0, 999\n syscall\n", "unknown syscall"},
		{"main:\n break\n", "BREAK"},
	}
	for _, c := range cases {
		p, err := asm.Assemble(c.src)
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		m := mem.NewMemory()
		p.LoadInto(m)
		cpu := New(m, p.Entry, asm.DefaultStackTop)
		_, err = cpu.Run(100)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want contains %q", c.src, err, c.want)
		}
	}
}

func TestStepAfterExitFails(t *testing.T) {
	c := run(t, "main:\n"+exitSeq, 10)
	if _, err := c.Step(); err == nil {
		t.Fatal("step after exit should fail")
	}
}

func TestRunRespectsMax(t *testing.T) {
	p, err := asm.Assemble("main:\nloop: j loop\n")
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory()
	p.LoadInto(m)
	c := New(m, p.Entry, asm.DefaultStackTop)
	n, err := c.Run(50)
	if err != nil || n != 50 || c.Done {
		t.Fatalf("n=%d err=%v done=%v", n, err, c.Done)
	}
}

// Fibonacci both iteratively in assembly and natively; the register result
// must match.
func TestFibonacci(t *testing.T) {
	c := run(t, `
main:
    li   $t0, 20      # n
    li   $t1, 0       # fib(0)
    li   $t2, 1       # fib(1)
fib:
    blez $t0, done
    addu $t3, $t1, $t2
    move $t1, $t2
    move $t2, $t3
    addiu $t0, $t0, -1
    j    fib
done:
    move $s0, $t1
`+exitSeq, 1000)
	fib := func(n int) uint32 {
		a, b := uint32(0), uint32(1)
		for i := 0; i < n; i++ {
			a, b = b, a+b
		}
		return a
	}
	if c.Regs[isa.RegS0] != fib(20) {
		t.Fatalf("fib(20): got %d want %d", c.Regs[isa.RegS0], fib(20))
	}
}

func TestRecursiveFactorialWithStack(t *testing.T) {
	c := run(t, `
main:
    li   $a0, 10
    jal  fact
    move $s0, $v0
`+exitSeq+`
fact:
    addiu $sp, $sp, -8
    sw    $ra, 4($sp)
    sw    $a0, 0($sp)
    li    $v0, 1
    blez  $a0, fact_ret
    addiu $a0, $a0, -1
    jal   fact
    lw    $a0, 0($sp)
    mul   $v0, $v0, $a0
fact_ret:
    lw    $ra, 4($sp)
    addiu $sp, $sp, 8
    jr    $ra
`, 10000)
	if c.Regs[isa.RegS0] != 3628800 {
		t.Fatalf("10! = %d", c.Regs[isa.RegS0])
	}
}
