// Package bmgating implements the comparison baseline the paper builds on:
// Brooks & Martonosi's narrow-width operand gating (the paper's reference
// [1], "Dynamically Exploiting Narrow Width Operands to Improve Processor
// Power and Performance", HPCA-5 1999).
//
// Their mechanism detects operands whose upper bits are all zeros (or all
// ones) at a fixed 16-bit boundary and clock-gates the upper half of the
// integer execution units when both operands are narrow. Crucially, the
// technique is confined to the functional units: instruction fetch, the
// register file, the caches, the PC unit and the pipeline latches all
// remain full width. The paper's §1 generalizes exactly this idea "to all
// stages of the pipeline" — this package exists so the generalization can
// be quantified against its starting point.
package bmgating

import (
	"repro/internal/trace"
)

// narrowBits is the detection boundary: an operand is narrow when its top
// 16 bits are a sign extension of bit 15 (zeros for positives, ones for
// negatives), matching the zero/one-detection logic of [1].
const narrowBits = 16

// Narrow reports whether v passes the 16-bit narrow-operand detector.
func Narrow(v uint32) bool {
	top := v >> narrowBits
	if v&(1<<(narrowBits-1)) != 0 {
		return top == 0xffff
	}
	return top == 0
}

// Collector tallies ALU activity under Brooks-Martonosi gating versus the
// ungated 32-bit baseline. Only the ALU column exists: the technique does
// not touch the other pipeline structures.
type Collector struct {
	baselineBits uint64
	gatedBits    uint64
	narrowOps    uint64
	totalOps     uint64
}

// NewCollector returns an empty tally.
func NewCollector() *Collector { return &Collector{} }

// Consume implements trace.Consumer.
func (c *Collector) Consume(e trace.Event) {
	c.totalOps++
	c.baselineBits += 32
	// Both register operands (or the single one in use) must be narrow for
	// the upper half to be gated; immediates are 16-bit by construction.
	narrow := true
	if e.ReadsA && !Narrow(e.SrcA) {
		narrow = false
	}
	if e.ReadsB && !Narrow(e.SrcB) {
		narrow = false
	}
	if narrow {
		c.narrowOps++
		c.gatedBits += 32 - narrowBits
	} else {
		c.gatedBits += 32
	}
}

// Merge folds other's tallies into c (order-independent sums), so
// per-benchmark collectors accumulated on separate goroutines can be
// combined into one suite-level tally.
func (c *Collector) Merge(other *Collector) {
	c.baselineBits += other.baselineBits
	c.gatedBits += other.gatedBits
	c.narrowOps += other.narrowOps
	c.totalOps += other.totalOps
}

// ALUSaving returns the percent ALU activity reduction under BM gating.
func (c *Collector) ALUSaving() float64 {
	if c.baselineBits == 0 {
		return 0
	}
	return 100 * (1 - float64(c.gatedBits)/float64(c.baselineBits))
}

// NarrowShare returns the fraction of operations with all-narrow operands.
func (c *Collector) NarrowShare() float64 {
	if c.totalOps == 0 {
		return 0
	}
	return float64(c.narrowOps) / float64(c.totalOps)
}

// Ops returns the operations tallied.
func (c *Collector) Ops() uint64 { return c.totalOps }
