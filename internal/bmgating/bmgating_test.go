package bmgating

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/icomp"
	"repro/internal/isa"
	"repro/internal/trace"
)

func TestNarrowDetector(t *testing.T) {
	cases := []struct {
		v    uint32
		want bool
	}{
		{0, true},
		{0x7fff, true},
		{0x8000, false},     // positive needing 17 bits
		{0xffff8000, true},  // small negative
		{0xffff7fff, false}, // negative needing more
		{0x12345678, false},
		{0xffffffff, true}, // -1
	}
	for _, c := range cases {
		if got := Narrow(c.v); got != c.want {
			t.Errorf("Narrow(%#x) = %v, want %v", c.v, got, c.want)
		}
	}
}

func event(a, b uint32) trace.Event {
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	raw := isa.EncodeR(isa.FnADDU, isa.RegT0, isa.RegT1, isa.RegT2, 0)
	return trace.Annotate(cpu.Exec{
		PC: 0x400000, Raw: raw, Inst: isa.Decode(raw),
		SrcA: a, SrcB: b, ReadsA: true, ReadsB: true,
		Dest: isa.RegT2, Result: a + b, HasDest: true, NextPC: 0x400004,
	}, rc)
}

func TestCollectorGating(t *testing.T) {
	c := NewCollector()
	c.Consume(event(3, 4))                   // both narrow: gated
	c.Consume(event(3, 0x12345678))          // one wide: full width
	c.Consume(event(0xffff8000, 0xffffffff)) // both narrow negatives: gated
	if c.Ops() != 3 {
		t.Fatalf("ops: %d", c.Ops())
	}
	// 2 of 3 gated: bits = 16+32+16 = 64 of 96 -> 33.3% saving.
	if s := c.ALUSaving(); s < 33 || s > 34 {
		t.Fatalf("saving: %.1f%%", s)
	}
	if share := c.NarrowShare(); share < 0.66 || share > 0.67 {
		t.Fatalf("narrow share: %.2f", share)
	}
}

func TestCollectorMerge(t *testing.T) {
	events := []trace.Event{
		event(3, 4),
		event(3, 0x12345678),
		event(0xffff8000, 0xffffffff),
		event(0x10000, 2),
	}
	whole, a, b := NewCollector(), NewCollector(), NewCollector()
	for _, e := range events {
		whole.Consume(e)
	}
	for _, e := range events[:2] {
		a.Consume(e)
	}
	for _, e := range events[2:] {
		b.Consume(e)
	}
	a.Merge(b)
	if *a != *whole {
		t.Fatalf("merged collector %+v, want %+v", *a, *whole)
	}
}

func TestCollectorEmpty(t *testing.T) {
	c := NewCollector()
	if c.ALUSaving() != 0 || c.NarrowShare() != 0 {
		t.Fatal("empty collector should report zeros")
	}
}
