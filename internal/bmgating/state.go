package bmgating

// State is the wire form of a Collector tally: raw counts that one process
// can serialize and another can fold into a live Collector with AddState,
// preserving the Merge invariant across machine boundaries.
type State struct {
	BaselineBits uint64 `json:"baselineBits"`
	GatedBits    uint64 `json:"gatedBits"`
	NarrowOps    uint64 `json:"narrowOps"`
	TotalOps     uint64 `json:"totalOps"`
}

// State returns a copy of the raw tally for transport.
func (c *Collector) State() State {
	return State{
		BaselineBits: c.baselineBits,
		GatedBits:    c.gatedBits,
		NarrowOps:    c.narrowOps,
		TotalOps:     c.totalOps,
	}
}

// AddState folds a transported tally into c (order-independent sums).
func (c *Collector) AddState(st State) {
	c.baselineBits += st.BaselineBits
	c.gatedBits += st.GatedBits
	c.narrowOps += st.NarrowOps
	c.totalOps += st.TotalOps
}
