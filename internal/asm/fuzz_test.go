package asm

import "testing"

// The assembler must never panic: arbitrary input yields either a Program
// or a diagnostic error.
func FuzzAssembleNoPanic(f *testing.F) {
	seeds := []string{
		"",
		"main:\n addu $t0, $t1, $t2\n",
		".data\nx: .word 1, 2, 3\n",
		"li $t0, 0x12345678",
		"lw $t0, 4($sp)",
		".asciiz \"unterminated",
		"label without colon addu",
		"blt $t0, $t1, somewhere",
		": : :",
		".word",
		"addu $t0, $t1, $t2, $t3, $t4",
		"\x00\x01\x02",
		"li $t0, 'x",
		".align 31",
		".space -1",
		"a:b:c: nop",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err == nil && p == nil {
			t.Fatal("nil program without error")
		}
		if err != nil && p != nil {
			t.Fatal("program returned alongside error")
		}
	})
}

// A successfully assembled program's text must decode to valid
// instructions (the assembler never emits undefined encodings).
func FuzzAssembledTextIsValid(f *testing.F) {
	f.Add("main:\n addu $t0, $t1, $t2\n sll $t0, $t0, 3\n jr $ra\n")
	f.Add("x: lw $t0, 0($sp)\n beq $t0, $zero, x\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		for i, w := range p.Text {
			if err := decodeValidate(w); err != nil {
				t.Fatalf("word %d (%#08x): %v", i, w, err)
			}
		}
	})
}
