package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func assemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestBasicRFormat(t *testing.T) {
	p := assemble(t, `
.text
main:
    addu $t0, $t1, $t2
    sll  $t3, $t4, 5
    jr   $ra
`)
	if len(p.Text) != 3 {
		t.Fatalf("words: %d", len(p.Text))
	}
	if p.Text[0] != isa.EncodeR(isa.FnADDU, isa.RegT1, isa.RegT2, isa.RegT0, 0) {
		t.Errorf("addu: %#08x", p.Text[0])
	}
	if p.Text[1] != isa.EncodeR(isa.FnSLL, 0, isa.RegT4, isa.RegT3, 5) {
		t.Errorf("sll: %#08x", p.Text[1])
	}
	if p.Entry != DefaultTextBase {
		t.Errorf("entry: %#x", p.Entry)
	}
}

func TestIFormatAndMem(t *testing.T) {
	p := assemble(t, `
    addiu $sp, $sp, -32
    lw    $t0, 8($sp)
    ori   $t1, $t0, 0xff
    sh    $t1, ($sp)
`)
	if p.Text[0] != isa.EncodeI(isa.OpADDIU, isa.RegSP, isa.RegSP, -32) {
		t.Errorf("addiu: %#08x", p.Text[0])
	}
	if p.Text[1] != isa.EncodeI(isa.OpLW, isa.RegSP, isa.RegT0, 8) {
		t.Errorf("lw: %#08x", p.Text[1])
	}
	if p.Text[3] != isa.EncodeI(isa.OpSH, isa.RegSP, isa.RegT1, 0) {
		t.Errorf("sh with empty offset: %#08x", p.Text[3])
	}
}

func TestSymbolicMemOffsetOutOfRange(t *testing.T) {
	_, err := Assemble(`
    sw $t0, buf($zero)
.data
buf: .word 1
`)
	if err == nil {
		t.Fatal("expected out-of-range offset error for far data symbol")
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := assemble(t, `
main:
    li   $t0, 10
loop:
    addiu $t0, $t0, -1
    bnez $t0, loop
    jr   $ra
`)
	// li(1) at 0x400000, addiu at 0x400004, bnez at 0x400008.
	bnez := p.Text[2]
	i := isa.Decode(bnez)
	if i.Op != isa.OpBNE {
		t.Fatalf("bnez decoded to %v", i.Mnemonic())
	}
	// Target loop = 0x400004; branch at 0x400008: offset = (4-8-4)/4 = -2.
	if i.Imm != -2 {
		t.Fatalf("branch offset: %d", i.Imm)
	}
}

func TestLiExpansions(t *testing.T) {
	p := assemble(t, `
    li $t0, 42
    li $t1, -42
    li $t2, 0xffff
    li $t3, 0x12345678
`)
	if len(p.Text) != 5 {
		t.Fatalf("words: %d (li wide should be 2)", len(p.Text))
	}
	if p.Text[0] != isa.EncodeI(isa.OpADDIU, 0, isa.RegT0, 42) {
		t.Errorf("li small: %#08x", p.Text[0])
	}
	if p.Text[2] != isa.EncodeI(isa.OpORI, 0, isa.RegT2, -1) {
		t.Errorf("li 0xffff: %#08x", p.Text[2])
	}
	if p.Text[3] != isa.EncodeI(isa.OpLUI, 0, isa.RegT3, 0x1234) {
		t.Errorf("li wide hi: %#08x", p.Text[3])
	}
	if p.Text[4] != isa.EncodeI(isa.OpORI, isa.RegT3, isa.RegT3, int16(uint16(0x5678))) {
		t.Errorf("li wide lo: %#08x", p.Text[4])
	}
}

func TestLaUsesDataBase(t *testing.T) {
	p := assemble(t, `
    la $a0, table
.data
    .space 8
table:
    .word 7
`)
	if p.Text[0] != isa.EncodeI(isa.OpLUI, 0, isa.RegA0, 0x1000) {
		t.Errorf("la hi: %#08x", p.Text[0])
	}
	if p.Text[1] != isa.EncodeI(isa.OpORI, isa.RegA0, isa.RegA0, 8) {
		t.Errorf("la lo: %#08x", p.Text[1])
	}
	if p.Symbols["table"] != DefaultDataBase+8 {
		t.Errorf("table addr: %#x", p.Symbols["table"])
	}
}

func TestDataDirectives(t *testing.T) {
	p := assemble(t, `
.data
w:  .word 0x11223344
h:  .half 0x5566
b:  .byte 0x77, 0x88
s:  .asciiz "hi"
    .align 2
w2: .word 1
`)
	want := []byte{
		0x44, 0x33, 0x22, 0x11, // word, little endian
		0x66, 0x55,
		0x77, 0x88,
		'h', 'i', 0,
		0, // align padding to offset 12
		1, 0, 0, 0,
	}
	if len(p.Data) != len(want) {
		t.Fatalf("data len: %d want %d (% x)", len(p.Data), len(want), p.Data)
	}
	for i := range want {
		if p.Data[i] != want[i] {
			t.Fatalf("data[%d]=%#x want %#x", i, p.Data[i], want[i])
		}
	}
	if p.Symbols["w2"] != DefaultDataBase+12 {
		t.Errorf("w2: %#x", p.Symbols["w2"])
	}
}

func TestStringEscapes(t *testing.T) {
	p := assemble(t, `
.data
s: .asciiz "a\nb\tc\\d"
`)
	if string(p.Data) != "a\nb\tc\\d\x00" {
		t.Fatalf("escapes: %q", string(p.Data))
	}
}

func TestCharLiterals(t *testing.T) {
	p := assemble(t, `
    li $t0, 'A'
    li $t1, '\n'
`)
	if p.Text[0] != isa.EncodeI(isa.OpADDIU, 0, isa.RegT0, 65) {
		t.Errorf("'A': %#08x", p.Text[0])
	}
	if p.Text[1] != isa.EncodeI(isa.OpADDIU, 0, isa.RegT1, 10) {
		t.Errorf("'\\n': %#08x", p.Text[1])
	}
}

func TestPseudoBranches(t *testing.T) {
	p := assemble(t, `
main:
    blt $t0, $t1, out
    bgeu $t2, $t3, out
out:
    nop
`)
	if len(p.Text) != 5 {
		t.Fatalf("words: %d", len(p.Text))
	}
	slt := isa.Decode(p.Text[0])
	if slt.Funct != isa.FnSLT || slt.Rd != isa.RegAT {
		t.Errorf("blt slt: %s", slt.Disassemble(0))
	}
	br := isa.Decode(p.Text[1])
	// branch at 0x400004, target out=0x400010: off=(0x10-0x4-4)/4=2.
	if br.Op != isa.OpBNE || br.Imm != 2 {
		t.Errorf("blt branch: %s imm=%d", br.Disassemble(0), br.Imm)
	}
	sltu := isa.Decode(p.Text[2])
	if sltu.Funct != isa.FnSLTU {
		t.Errorf("bgeu cmp: %s", sltu.Disassemble(0))
	}
	if isa.Decode(p.Text[3]).Op != isa.OpBEQ {
		t.Errorf("bgeu branch: %s", isa.Decode(p.Text[3]).Disassemble(0))
	}
}

func TestMulRemPseudo(t *testing.T) {
	p := assemble(t, `
    mul $t0, $t1, $t2
    rem $t3, $t4, $t5
    divq $t6, $t7, $s0
`)
	if len(p.Text) != 6 {
		t.Fatalf("words: %d", len(p.Text))
	}
	if isa.Decode(p.Text[0]).Funct != isa.FnMULT || isa.Decode(p.Text[1]).Funct != isa.FnMFLO {
		t.Error("mul expansion wrong")
	}
	if isa.Decode(p.Text[2]).Funct != isa.FnDIV || isa.Decode(p.Text[3]).Funct != isa.FnMFHI {
		t.Error("rem expansion wrong")
	}
	if isa.Decode(p.Text[5]).Funct != isa.FnMFLO {
		t.Error("divq expansion wrong")
	}
}

func TestEntryDetection(t *testing.T) {
	p := assemble(t, `
helper:
    jr $ra
main:
    nop
`)
	if p.Entry != DefaultTextBase+4 {
		t.Fatalf("entry: %#x", p.Entry)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"frobnicate $t0", "unknown mnemonic"},
		{"addu $t0, $t1", "needs 3 operands"},
		{"addu $t0, $t1, $zz", "unknown register"},
		{"addiu $t0, $t1, 70000", "does not fit"},
		{"lw $t0, 8[$sp]", "expected offset($reg)"},
		{"x: nop\nx: nop", "already defined"},
		{".data\n.word zzz", "undefined symbol"},
		{".data\n.half zzz", "bad immediate"},
		{"beq $t0, $t1, nowhere", "bad immediate"}, // unresolved label
		{"sll $t0, $t1, 32", "out of range"},
		{".bogus", "unknown directive"},
		{".data\nnop", "in data segment"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("%q: expected error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.wantSub)
		}
	}
}

func TestErrorCarriesLineNumber(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus $t0\n")
	if err == nil {
		t.Fatal("expected error")
	}
	ae, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ae.Line != 3 {
		t.Fatalf("line: %d", ae.Line)
	}
}

func TestCommentsEverywhere(t *testing.T) {
	p := assemble(t, `
# full line comment
main: # label comment
    li $t0, 35   # trailing '#' inside comment is fine
.data
msg: .asciiz "has # inside"  # comment after string
`)
	if string(p.Data) != "has # inside\x00" {
		t.Fatalf("data: %q", string(p.Data))
	}
	if len(p.Text) != 1 {
		t.Fatalf("text words: %d", len(p.Text))
	}
}

func TestDisassembleOutput(t *testing.T) {
	p := assemble(t, "main:\n  addu $t0, $t1, $t2\n")
	out := Disassemble(p)
	if !strings.Contains(out, "addu $t0, $t1, $t2") {
		t.Fatalf("disassembly: %q", out)
	}
	if !strings.Contains(out, "00400000") {
		t.Fatalf("missing address: %q", out)
	}
}

func TestLoadInto(t *testing.T) {
	p := assemble(t, `
main:
    li $t0, 7
.data
v:  .word 99
`)
	m := newTestMemory()
	p.LoadInto(m)
	if m.Load32(DefaultTextBase) != p.Text[0] {
		t.Error("text not loaded")
	}
	if m.Load32(DefaultDataBase) != 99 {
		t.Error("data not loaded")
	}
}

func TestWordLabelReferences(t *testing.T) {
	p := assemble(t, `
main:
    la  $t0, ptrs
    lw  $t1, 0($t0)     # -> buf
    lw  $t2, 4($t0)     # -> later (forward reference)
.data
buf:  .word 42
ptrs: .word buf, later
later: .word 7
`)
	bufAddr := p.Symbols["buf"]
	laterAddr := p.Symbols["later"]
	// ptrs is at dataBase+4: two words holding the two addresses.
	off := p.Symbols["ptrs"] - DefaultDataBase
	got1 := uint32(p.Data[off]) | uint32(p.Data[off+1])<<8 | uint32(p.Data[off+2])<<16 | uint32(p.Data[off+3])<<24
	got2 := uint32(p.Data[off+4]) | uint32(p.Data[off+5])<<8 | uint32(p.Data[off+6])<<16 | uint32(p.Data[off+7])<<24
	if got1 != bufAddr || got2 != laterAddr {
		t.Fatalf("pointer words: %#x %#x want %#x %#x", got1, got2, bufAddr, laterAddr)
	}
}

func TestWordUndefinedLabel(t *testing.T) {
	_, err := Assemble(".data\nx: .word missing\n")
	if err == nil || !strings.Contains(err.Error(), "undefined symbol") {
		t.Fatalf("err: %v", err)
	}
}
