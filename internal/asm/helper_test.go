package asm

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

func newTestMemory() *mem.Memory { return mem.NewMemory() }

// decodeValidate decodes one text word and validates it against the ISA.
func decodeValidate(w uint32) error { return isa.Decode(w).Validate() }
