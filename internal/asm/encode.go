package asm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// opcode tables for the regular (non-pseudo) instructions.
var rrr = map[string]isa.Funct{ // mnem rd, rs, rt
	"addu": isa.FnADDU, "add": isa.FnADD, "subu": isa.FnSUBU, "sub": isa.FnSUB,
	"and": isa.FnAND, "or": isa.FnOR, "xor": isa.FnXOR, "nor": isa.FnNOR,
	"slt": isa.FnSLT, "sltu": isa.FnSLTU,
}

var shiftImm = map[string]isa.Funct{ // mnem rd, rt, shamt
	"sll": isa.FnSLL, "srl": isa.FnSRL, "sra": isa.FnSRA,
}

var shiftVar = map[string]isa.Funct{ // mnem rd, rt, rs
	"sllv": isa.FnSLLV, "srlv": isa.FnSRLV, "srav": isa.FnSRAV,
}

var immOps = map[string]isa.Opcode{ // mnem rt, rs, imm
	"addi": isa.OpADDI, "addiu": isa.OpADDIU,
	"slti": isa.OpSLTI, "sltiu": isa.OpSLTIU,
	"andi": isa.OpANDI, "ori": isa.OpORI, "xori": isa.OpXORI,
}

var memOps = map[string]isa.Opcode{ // mnem rt, off(rs)
	"lb": isa.OpLB, "lbu": isa.OpLBU, "lh": isa.OpLH, "lhu": isa.OpLHU,
	"lw": isa.OpLW, "sb": isa.OpSB, "sh": isa.OpSH, "sw": isa.OpSW,
}

var hiloOps = map[string]isa.Funct{ // mult/div rs, rt
	"mult": isa.FnMULT, "multu": isa.FnMULTU, "divu": isa.FnDIVU,
}

func (a *assembler) needArgs(it item, n int) error {
	if len(it.args) != n {
		return errf(it.line, "%s needs %d operands, got %d", it.mnem, n, len(it.args))
	}
	return nil
}

// encode translates one statement (possibly a pseudo-instruction) into
// machine words.
func (a *assembler) encode(it item) ([]uint32, error) {
	one := func(w uint32, err error) ([]uint32, error) {
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	}
	mnem, args, line, pc := it.mnem, it.args, it.line, it.addr

	// Regular three-register ALU ops.
	if fn, ok := rrr[mnem]; ok {
		if err := a.needArgs(it, 3); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(args[0], line)
		rs, err2 := parseReg(args[1], line)
		rt, err3 := parseReg(args[2], line)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		return one(isa.EncodeR(fn, rs, rt, rd, 0), nil)
	}
	if fn, ok := shiftImm[mnem]; ok {
		if err := a.needArgs(it, 3); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(args[0], line)
		rt, err2 := parseReg(args[1], line)
		sh, err3 := parseImm(args[2], line)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		if sh < 0 || sh > 31 {
			return nil, errf(line, "shift amount %d out of range", sh)
		}
		return one(isa.EncodeR(fn, 0, rt, rd, uint8(sh)), nil)
	}
	if fn, ok := shiftVar[mnem]; ok {
		if err := a.needArgs(it, 3); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(args[0], line)
		rt, err2 := parseReg(args[1], line)
		rs, err3 := parseReg(args[2], line)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		return one(isa.EncodeR(fn, rs, rt, rd, 0), nil)
	}
	if op, ok := immOps[mnem]; ok {
		if err := a.needArgs(it, 3); err != nil {
			return nil, err
		}
		rt, err1 := parseReg(args[0], line)
		rs, err2 := parseReg(args[1], line)
		v, err3 := a.resolve(args[2], line)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		// Logical immediates are zero-extended; others sign-extended.
		if mnem == "andi" || mnem == "ori" || mnem == "xori" {
			if !fitsUnsigned16(v) {
				return nil, errf(line, "immediate %d does not fit 16 unsigned bits", v)
			}
		} else if !fitsSigned16(v) {
			return nil, errf(line, "immediate %d does not fit 16 signed bits", v)
		}
		return one(isa.EncodeI(op, rs, rt, int16(uint16(v))), nil)
	}
	if op, ok := memOps[mnem]; ok {
		if err := a.needArgs(it, 2); err != nil {
			return nil, err
		}
		rt, err1 := parseReg(args[0], line)
		off, base, err2 := a.memOperand(args[1], line)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return one(isa.EncodeI(op, base, rt, off), nil)
	}

	switch mnem {
	case "lui":
		if err := a.needArgs(it, 2); err != nil {
			return nil, err
		}
		rt, err1 := parseReg(args[0], line)
		v, err2 := parseImm(args[1], line)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		if v < 0 || v > 0xffff {
			return nil, errf(line, "lui immediate %d out of range", v)
		}
		return one(isa.EncodeI(isa.OpLUI, 0, rt, int16(uint16(v))), nil)

	case "mult", "multu", "divu":
		if err := a.needArgs(it, 2); err != nil {
			return nil, err
		}
		rs, err1 := parseReg(args[0], line)
		rt, err2 := parseReg(args[1], line)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return one(isa.EncodeR(hiloOps[mnem], rs, rt, 0, 0), nil)

	case "div":
		// Two forms: "div $rs, $rt" (HI/LO) and the three-operand pseudo.
		if len(args) == 2 {
			rs, err1 := parseReg(args[0], line)
			rt, err2 := parseReg(args[1], line)
			if err := firstErr(err1, err2); err != nil {
				return nil, err
			}
			return one(isa.EncodeR(isa.FnDIV, rs, rt, 0, 0), nil)
		}
		return nil, errf(line, "div needs 2 operands (use divq for the 3-operand pseudo)")

	case "mfhi", "mflo":
		if err := a.needArgs(it, 1); err != nil {
			return nil, err
		}
		rd, err := parseReg(args[0], line)
		if err != nil {
			return nil, err
		}
		fn := isa.FnMFLO
		if mnem == "mfhi" {
			fn = isa.FnMFHI
		}
		return one(isa.EncodeR(fn, 0, 0, rd, 0), nil)

	case "mthi", "mtlo":
		if err := a.needArgs(it, 1); err != nil {
			return nil, err
		}
		rs, err := parseReg(args[0], line)
		if err != nil {
			return nil, err
		}
		fn := isa.FnMTLO
		if mnem == "mthi" {
			fn = isa.FnMTHI
		}
		return one(isa.EncodeR(fn, rs, 0, 0, 0), nil)

	case "jr":
		if err := a.needArgs(it, 1); err != nil {
			return nil, err
		}
		rs, err := parseReg(args[0], line)
		if err != nil {
			return nil, err
		}
		return one(isa.EncodeR(isa.FnJR, rs, 0, 0, 0), nil)

	case "jalr":
		switch len(args) {
		case 1:
			rs, err := parseReg(args[0], line)
			if err != nil {
				return nil, err
			}
			return one(isa.EncodeR(isa.FnJALR, rs, 0, isa.RegRA, 0), nil)
		case 2:
			rd, err1 := parseReg(args[0], line)
			rs, err2 := parseReg(args[1], line)
			if err := firstErr(err1, err2); err != nil {
				return nil, err
			}
			return one(isa.EncodeR(isa.FnJALR, rs, 0, rd, 0), nil)
		}
		return nil, errf(line, "jalr needs 1 or 2 operands")

	case "syscall":
		return one(isa.EncodeR(isa.FnSYSCALL, 0, 0, 0, 0), nil)
	case "break":
		return one(isa.EncodeR(isa.FnBREAK, 0, 0, 0, 0), nil)
	case "nop":
		return one(0, nil)

	case "j", "jal":
		if err := a.needArgs(it, 1); err != nil {
			return nil, err
		}
		t, err := a.resolve(args[0], line)
		if err != nil {
			return nil, err
		}
		target := uint32(t)
		if target&3 != 0 {
			return nil, errf(line, "jump target %#x not aligned", target)
		}
		if (pc+4)&0xf000_0000 != target&0xf000_0000 {
			return nil, errf(line, "jump target %#x outside current 256MB region", target)
		}
		op := isa.OpJ
		if mnem == "jal" {
			op = isa.OpJAL
		}
		return one(isa.EncodeJ(op, target>>2), nil)

	case "beq", "bne":
		if err := a.needArgs(it, 3); err != nil {
			return nil, err
		}
		rs, err1 := parseReg(args[0], line)
		rt, err2 := parseReg(args[1], line)
		off, err3 := a.branchOffset(args[2], pc, line)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		op := isa.OpBEQ
		if mnem == "bne" {
			op = isa.OpBNE
		}
		return one(isa.EncodeI(op, rs, rt, off), nil)

	case "blez", "bgtz":
		if err := a.needArgs(it, 2); err != nil {
			return nil, err
		}
		rs, err1 := parseReg(args[0], line)
		off, err2 := a.branchOffset(args[1], pc, line)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		op := isa.OpBLEZ
		if mnem == "bgtz" {
			op = isa.OpBGTZ
		}
		return one(isa.EncodeI(op, rs, 0, off), nil)

	case "bltz", "bgez":
		if err := a.needArgs(it, 2); err != nil {
			return nil, err
		}
		rs, err1 := parseReg(args[0], line)
		off, err2 := a.branchOffset(args[1], pc, line)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		sel := uint8(isa.RegimmBLTZ)
		if mnem == "bgez" {
			sel = isa.RegimmBGEZ
		}
		return one(isa.EncodeRegimm(sel, rs, off), nil)
	}

	return a.encodePseudo(it)
}

// encodePseudo handles multi-word and alias expansions.
func (a *assembler) encodePseudo(it item) ([]uint32, error) {
	mnem, args, line, pc := it.mnem, it.args, it.line, it.addr
	switch mnem {
	case "li":
		if err := a.needArgs(it, 2); err != nil {
			return nil, err
		}
		rt, err1 := parseReg(args[0], line)
		v, err2 := parseImm(args[1], line)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return liWords(rt, v), nil

	case "la":
		if err := a.needArgs(it, 2); err != nil {
			return nil, err
		}
		rt, err1 := parseReg(args[0], line)
		v, err2 := a.resolve(args[1], line)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		addr := uint32(v)
		// Always two words so pass-1 sizing is stable.
		return []uint32{
			isa.EncodeI(isa.OpLUI, 0, rt, int16(uint16(addr>>16))),
			isa.EncodeI(isa.OpORI, rt, rt, int16(uint16(addr))),
		}, nil

	case "move":
		if err := a.needArgs(it, 2); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(args[0], line)
		rs, err2 := parseReg(args[1], line)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return []uint32{isa.EncodeR(isa.FnADDU, rs, isa.RegZero, rd, 0)}, nil

	case "neg":
		if err := a.needArgs(it, 2); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(args[0], line)
		rs, err2 := parseReg(args[1], line)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return []uint32{isa.EncodeR(isa.FnSUBU, isa.RegZero, rs, rd, 0)}, nil

	case "not":
		if err := a.needArgs(it, 2); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(args[0], line)
		rs, err2 := parseReg(args[1], line)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return []uint32{isa.EncodeR(isa.FnNOR, rs, isa.RegZero, rd, 0)}, nil

	case "b":
		if err := a.needArgs(it, 1); err != nil {
			return nil, err
		}
		off, err := a.branchOffset(args[0], pc, line)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.EncodeI(isa.OpBEQ, 0, 0, off)}, nil

	case "beqz", "bnez":
		if err := a.needArgs(it, 2); err != nil {
			return nil, err
		}
		rs, err1 := parseReg(args[0], line)
		off, err2 := a.branchOffset(args[1], pc, line)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		op := isa.OpBEQ
		if mnem == "bnez" {
			op = isa.OpBNE
		}
		return []uint32{isa.EncodeI(op, rs, 0, off)}, nil

	case "blt", "bge", "bgt", "ble", "bltu", "bgeu", "bgtu", "bleu":
		if err := a.needArgs(it, 3); err != nil {
			return nil, err
		}
		rs, err1 := parseReg(args[0], line)
		rt, err2 := parseReg(args[1], line)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		// The slt occupies the first slot, so the branch sits at pc+4.
		off, err := a.branchOffset(args[2], pc+4, line)
		if err != nil {
			return nil, err
		}
		fn := isa.FnSLT
		if mnem[len(mnem)-1] == 'u' {
			fn = isa.FnSLTU
		}
		var cmp uint32
		var brOp isa.Opcode
		switch mnem {
		case "blt", "bltu":
			cmp, brOp = isa.EncodeR(fn, rs, rt, isa.RegAT, 0), isa.OpBNE
		case "bge", "bgeu":
			cmp, brOp = isa.EncodeR(fn, rs, rt, isa.RegAT, 0), isa.OpBEQ
		case "bgt", "bgtu":
			cmp, brOp = isa.EncodeR(fn, rt, rs, isa.RegAT, 0), isa.OpBNE
		case "ble", "bleu":
			cmp, brOp = isa.EncodeR(fn, rt, rs, isa.RegAT, 0), isa.OpBEQ
		}
		return []uint32{cmp, isa.EncodeI(brOp, isa.RegAT, 0, off)}, nil

	case "mul":
		if err := a.needArgs(it, 3); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(args[0], line)
		rs, err2 := parseReg(args[1], line)
		rt, err3 := parseReg(args[2], line)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		return []uint32{
			isa.EncodeR(isa.FnMULT, rs, rt, 0, 0),
			isa.EncodeR(isa.FnMFLO, 0, 0, rd, 0),
		}, nil

	case "divq", "rem":
		if err := a.needArgs(it, 3); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(args[0], line)
		rs, err2 := parseReg(args[1], line)
		rt, err3 := parseReg(args[2], line)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		mf := isa.FnMFLO
		if mnem == "rem" {
			mf = isa.FnMFHI
		}
		return []uint32{
			isa.EncodeR(isa.FnDIV, rs, rt, 0, 0),
			isa.EncodeR(mf, 0, 0, rd, 0),
		}, nil

	case "seq", "sne":
		// seq rd, rs, rt: rd = (rs == rt); sne: rd = (rs != rt).
		if err := a.needArgs(it, 3); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(args[0], line)
		rs, err2 := parseReg(args[1], line)
		rt, err3 := parseReg(args[2], line)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		xor := isa.EncodeR(isa.FnXOR, rs, rt, rd, 0)
		if mnem == "seq" {
			return []uint32{xor, isa.EncodeI(isa.OpSLTIU, rd, rd, 1)}, nil
		}
		return []uint32{xor, isa.EncodeR(isa.FnSLTU, isa.RegZero, rd, rd, 0)}, nil
	}

	return nil, errf(line, "unknown mnemonic %q", mnem)
}

// liWords builds the canonical li expansion. Must agree with
// expansionWords.
func liWords(rt isa.Reg, v int64) []uint32 {
	switch {
	case fitsSigned16(v):
		return []uint32{isa.EncodeI(isa.OpADDIU, isa.RegZero, rt, int16(v))}
	case fitsUnsigned16(v):
		return []uint32{isa.EncodeI(isa.OpORI, isa.RegZero, rt, int16(uint16(v)))}
	default:
		u := uint32(v)
		return []uint32{
			isa.EncodeI(isa.OpLUI, 0, rt, int16(uint16(u>>16))),
			isa.EncodeI(isa.OpORI, rt, rt, int16(uint16(u))),
		}
	}
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Disassemble renders an assembled program for debugging.
func Disassemble(p *Program) string {
	var sb strings.Builder
	for i, w := range p.Text {
		pc := p.TextBase + uint32(4*i)
		fmt.Fprintf(&sb, "%08x:  %08x  %s\n", pc, w, isa.Decode(w).Disassemble(pc))
	}
	return sb.String()
}
