// Package asm implements a two-pass MIPS assembler sufficient to author the
// benchmark suite: labels, data directives, the full instruction subset of
// package isa, and the common pseudo-instructions (li, la, move, nop, b,
// beqz/bnez, blt/bge/bgt/ble and unsigned forms, neg, not, mul, rem, seq).
//
// Defaults match the paper's experimental framework: the text segment is
// based at 0x00400000 and the data segment at 0x10000000 ("the data segment
// base of our experimental framework is set at address 10 00 00 00", §2.1);
// the stack grows down from 0x7FFFF000.
package asm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Default memory layout.
const (
	DefaultTextBase = 0x0040_0000
	DefaultDataBase = 0x1000_0000
	DefaultStackTop = 0x7fff_f000
)

// Program is the loadable output of the assembler.
type Program struct {
	TextBase uint32
	Text     []uint32
	DataBase uint32
	Data     []byte
	Entry    uint32
	Symbols  map[string]uint32
}

// LoadInto places the program image into memory.
func (p *Program) LoadInto(m *mem.Memory) {
	for i, w := range p.Text {
		m.Store32(p.TextBase+uint32(4*i), w)
	}
	m.LoadSegment(p.DataBase, p.Data)
}

// Error is an assembly diagnostic carrying its source position. Line and
// Col are 1-based; Col is 0 when the column is unknown. Col points at the
// statement (mnemonic or directive) the diagnostic concerns, which is
// enough for an intake endpoint to highlight the offending source line.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("asm: line %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...interface{}) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// atCol pins a column on an *Error that does not carry one yet.
func atCol(err error, col int) error {
	if err == nil || col <= 0 {
		return err
	}
	var ae *Error
	if errors.As(err, &ae) && ae.Col == 0 {
		ae.Col = col
	}
	return err
}

type segment int

const (
	segText segment = iota
	segData
)

// item is one parsed source statement pinned to an address.
type item struct {
	line   int
	col    int // 1-based column of the mnemonic in its source line
	mnem   string
	args   []string
	addr   uint32
	nwords int // instruction words this statement expands to (text only)
}

type assembler struct {
	symbols  map[string]uint32
	symLines map[string]int
	textPos  uint32
	dataPos  uint32
	textBase uint32
	dataBase uint32
	items    []item
	data     []byte
	// dataFixups are .word cells holding label references, patched in
	// pass 2 once every symbol is known (allows forward references).
	dataFixups []dataFixup
}

// dataFixup records a .word cell awaiting a symbol value.
type dataFixup struct {
	offset uint32 // byte offset into data
	symbol string
	line   int
}

// Assemble translates source into a Program.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		symbols:  make(map[string]uint32),
		symLines: make(map[string]int),
		textBase: DefaultTextBase,
		dataBase: DefaultDataBase,
	}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	return a.pass2()
}

// MustAssemble is Assemble for statically known-good sources (the embedded
// benchmark kernels); it panics on error.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// splitOperands splits on commas that are not inside quotes.
func splitOperands(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'', '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" || len(out) > 0 {
		out = append(out, last)
	}
	return out
}

// stripComment removes a # comment, respecting character/string literals.
func stripComment(s string) string {
	inQuote := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inQuote != 0 {
			if c == '\\' {
				i++
			} else if c == inQuote {
				inQuote = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inQuote = c
		case '#':
			return s[:i]
		}
	}
	return s
}

func (a *assembler) define(label string, addr uint32, line int) error {
	if prev, ok := a.symLines[label]; ok {
		return errf(line, "label %q already defined at line %d", label, prev)
	}
	a.symbols[label] = addr
	a.symLines[label] = line
	return nil
}

func (a *assembler) pass1(src string) error {
	seg := segText
	lines := strings.Split(src, "\n")
	for ln, rawLine := range lines {
		line := ln + 1
		s := strings.TrimSpace(stripComment(rawLine))
		// Peel off any leading labels.
		for {
			idx := strings.Index(s, ":")
			if idx < 0 {
				break
			}
			label := strings.TrimSpace(s[:idx])
			if !isIdent(label) {
				break
			}
			addr := a.textBase + a.textPos
			if seg == segData {
				addr = a.dataBase + a.dataPos
			}
			if err := a.define(label, addr, line); err != nil {
				return err
			}
			s = strings.TrimSpace(s[idx+1:])
		}
		if s == "" {
			continue
		}
		fields := strings.SplitN(s, " ", 2)
		mnem := strings.ToLower(strings.TrimSpace(fields[0]))
		col := 0
		if idx := strings.Index(rawLine, fields[0]); idx >= 0 {
			col = idx + 1
		}
		var rest string
		if len(fields) == 2 {
			rest = strings.TrimSpace(fields[1])
		}
		args := splitOperands(rest)

		if strings.HasPrefix(mnem, ".") {
			var err error
			seg, err = a.directive(seg, mnem, args, line)
			if err != nil {
				return atCol(err, col)
			}
			continue
		}
		if seg != segText {
			return atCol(errf(line, "instruction %q in data segment", mnem), col)
		}
		n, err := expansionWords(mnem, args, line)
		if err != nil {
			return atCol(err, col)
		}
		a.items = append(a.items, item{
			line: line, col: col, mnem: mnem, args: args,
			addr: a.textBase + a.textPos, nwords: n,
		})
		a.textPos += uint32(4 * n)
	}
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (a *assembler) directive(seg segment, mnem string, args []string, line int) (segment, error) {
	switch mnem {
	case ".text":
		return segText, nil
	case ".data":
		return segData, nil
	case ".globl", ".global", ".ent", ".end", ".set":
		return seg, nil // accepted and ignored
	case ".align":
		if len(args) != 1 {
			return seg, errf(line, ".align needs one argument")
		}
		n, err := parseImm(args[0], line)
		if err != nil {
			return seg, err
		}
		align := uint32(1) << uint(n)
		if seg == segData {
			for a.dataPos%align != 0 {
				a.data = append(a.data, 0)
				a.dataPos++
			}
		} else if a.textPos%align != 0 {
			return seg, errf(line, ".align in text not supported mid-stream")
		}
		return seg, nil
	case ".space":
		if seg != segData {
			return seg, errf(line, ".space outside .data")
		}
		if len(args) != 1 {
			return seg, errf(line, ".space needs one argument")
		}
		n, err := parseImm(args[0], line)
		if err != nil {
			return seg, err
		}
		if n < 0 {
			return seg, errf(line, ".space with negative size")
		}
		a.data = append(a.data, make([]byte, n)...)
		a.dataPos += uint32(n)
		return seg, nil
	case ".word", ".half", ".byte":
		if seg != segData {
			return seg, errf(line, "%s outside .data", mnem)
		}
		for _, arg := range args {
			// .word accepts label references, resolved in pass 2.
			if mnem == ".word" && isIdent(arg) {
				a.dataFixups = append(a.dataFixups, dataFixup{offset: a.dataPos, symbol: arg, line: line})
				a.data = append(a.data, 0, 0, 0, 0)
				a.dataPos += 4
				continue
			}
			v, err := parseImm(arg, line)
			if err != nil {
				return seg, err
			}
			switch mnem {
			case ".word":
				a.data = append(a.data, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
				a.dataPos += 4
			case ".half":
				a.data = append(a.data, byte(v), byte(v>>8))
				a.dataPos += 2
			case ".byte":
				a.data = append(a.data, byte(v))
				a.dataPos++
			}
		}
		return seg, nil
	case ".ascii", ".asciiz":
		if seg != segData {
			return seg, errf(line, "%s outside .data", mnem)
		}
		if len(args) != 1 {
			return seg, errf(line, "%s needs one string", mnem)
		}
		str, err := parseString(args[0], line)
		if err != nil {
			return seg, err
		}
		a.data = append(a.data, str...)
		a.dataPos += uint32(len(str))
		if mnem == ".asciiz" {
			a.data = append(a.data, 0)
			a.dataPos++
		}
		return seg, nil
	}
	return seg, errf(line, "unknown directive %q", mnem)
}

func parseString(s string, line int) ([]byte, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return nil, errf(line, "malformed string literal %s", s)
	}
	unq, err := strconv.Unquote(s)
	if err != nil {
		return nil, errf(line, "bad string literal %s: %v", s, err)
	}
	return []byte(unq), nil
}

func parseImm(s string, line int) (int64, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		r, _, _, err := strconv.UnquoteChar(s[1:len(s)-1], '\'')
		if err != nil {
			return 0, errf(line, "bad char literal %s: %v", s, err)
		}
		return int64(r), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow full-range unsigned hex like 0xdeadbeef.
		if u, uerr := strconv.ParseUint(s, 0, 32); uerr == nil {
			return int64(int32(uint32(u))), nil
		}
		return 0, errf(line, "bad immediate %q", s)
	}
	return v, nil
}

func parseReg(s string, line int) (isa.Reg, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "$") {
		return 0, errf(line, "expected register, got %q", s)
	}
	r, ok := isa.RegByName(s[1:])
	if !ok {
		return 0, errf(line, "unknown register %q", s)
	}
	return r, nil
}

// fitsSigned16 and fitsUnsigned16 classify immediates for li expansion.
func fitsSigned16(v int64) bool   { return v >= -32768 && v <= 32767 }
func fitsUnsigned16(v int64) bool { return v >= 0 && v <= 0xffff }

// expansionWords reports how many instruction words a mnemonic occupies.
// It must agree exactly with encode (pass 2).
func expansionWords(mnem string, args []string, line int) (int, error) {
	switch mnem {
	case "li":
		if len(args) != 2 {
			return 0, errf(line, "li needs 2 operands")
		}
		v, err := parseImm(args[1], line)
		if err != nil {
			return 0, err
		}
		if fitsSigned16(v) || fitsUnsigned16(v) {
			return 1, nil
		}
		return 2, nil
	case "la", "mul", "rem", "divq", "blt", "bge", "bgt", "ble",
		"bltu", "bgeu", "bgtu", "bleu", "seq", "sne":
		return 2, nil
	default:
		return 1, nil
	}
}

func (a *assembler) pass2() (*Program, error) {
	prog := &Program{
		TextBase: a.textBase,
		DataBase: a.dataBase,
		Data:     a.data,
		Symbols:  a.symbols,
		Entry:    a.textBase,
	}
	if main, ok := a.symbols["main"]; ok {
		prog.Entry = main
	} else if start, ok := a.symbols["_start"]; ok {
		prog.Entry = start
	}
	for _, f := range a.dataFixups {
		v, ok := a.symbols[f.symbol]
		if !ok {
			return nil, errf(f.line, "undefined symbol %q in .word", f.symbol)
		}
		prog.Data[f.offset] = byte(v)
		prog.Data[f.offset+1] = byte(v >> 8)
		prog.Data[f.offset+2] = byte(v >> 16)
		prog.Data[f.offset+3] = byte(v >> 24)
	}
	for _, it := range a.items {
		words, err := a.encode(it)
		if err != nil {
			return nil, atCol(err, it.col)
		}
		if len(words) != it.nwords {
			return nil, errf(it.line, "internal: %s expanded to %d words, planned %d",
				it.mnem, len(words), it.nwords)
		}
		prog.Text = append(prog.Text, words...)
	}
	return prog, nil
}

// resolve interprets s as a symbol or an immediate.
func (a *assembler) resolve(s string, line int) (int64, error) {
	s = strings.TrimSpace(s)
	if addr, ok := a.symbols[s]; ok {
		return int64(addr), nil
	}
	return parseImm(s, line)
}

// branchOffset computes the 16-bit branch displacement to a target.
func (a *assembler) branchOffset(target string, pc uint32, line int) (int16, error) {
	t, err := a.resolve(target, line)
	if err != nil {
		return 0, err
	}
	diff := int64(uint32(t)) - int64(pc) - 4
	if diff&3 != 0 {
		return 0, errf(line, "branch target %q not word aligned", target)
	}
	off := diff >> 2
	if off < -32768 || off > 32767 {
		return 0, errf(line, "branch target %q out of range (%d words)", target, off)
	}
	return int16(off), nil
}

// memOperand parses "offset($reg)" with an optional symbolic or numeric
// offset.
func (a *assembler) memOperand(s string, line int) (int16, isa.Reg, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, errf(line, "expected offset($reg), got %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	var off int64
	if offStr != "" {
		var err error
		off, err = a.resolve(offStr, line)
		if err != nil {
			return 0, 0, err
		}
	}
	if off < -32768 || off > 32767 {
		return 0, 0, errf(line, "memory offset %d out of range", off)
	}
	reg, err := parseReg(s[open+1:len(s)-1], line)
	if err != nil {
		return 0, 0, err
	}
	return int16(off), reg, nil
}
