// Command sigserve is the significance-compression simulation daemon: an
// HTTP service that runs (benchmark × pipeline model) jobs from the paper's
// evaluation on demand, with a bounded worker pool, an LRU result cache,
// singleflight deduplication of concurrent identical requests, a metrics
// registry, and resilience hardening (panic containment, admission control
// with load shedding, retry-with-backoff, and a per-job circuit breaker).
//
// Endpoints:
//
//	GET  /healthz            liveness + uptime
//	GET  /readyz             readiness (503 while draining or overloaded)
//	GET  /metrics            counters and latency registry (JSON)
//	GET  /v1/benchmarks      served workload suite
//	GET  /v1/models          servable pipeline models
//	GET  /v1/simulate        ?bench=&model=&gran=   (POST: JSON body)
//	GET  /v1/sweep           ?gran=&bench=a,b&model=x,y   NDJSON stream
//	GET  /v1/suite           ?model=&gran=   full paper table for one model
//	GET  /v1/partial         ?bench=a,b   mergeable suite share (cluster fan-in)
//
// Usage:
//
//	sigserve -addr :8080 -workers 8 -cache 256 -timeout 2m
//
// Performance flags:
//
//	-trace-cache-mb N      memory budget for the LRU of captured benchmark
//	                       traces (capture once, replay for every model;
//	                       0 = 256 MB default, negative disables replay and
//	                       re-interprets every request)
//	-trace-dir DIR         back the trace cache with a SIGCAP01 capture
//	                       directory: new captures persist there, evicted
//	                       captures demote to disk, and cache misses reload
//	                       from it — shards sharing DIR (or a restarted
//	                       daemon) start warm instead of re-interpreting
//	-pprof                 mount net/http/pprof under /debug/pprof/
//
// Resilience flags:
//
//	-max-queued N          shed (HTTP 429) once N jobs are waiting
//	                       (0 = 8×workers, negative = unbounded)
//	-retries N             retry transient failures up to N times
//	-breaker-threshold N   quarantine a (bench, model) after N consecutive
//	                       failures (HTTP 503; 0 disables the breaker)
//
// For resilience testing only, -chaos arms the deterministic fault
// injector with a seeded schedule, e.g.:
//
//	sigserve -chaos '42:pool.pickup=latency(50ms)@0.2,cache.get=error@0.1'
//
// Never enable -chaos in production: it deliberately fails requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/simsvc"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (default GOMAXPROCS)")
	cacheSize := flag.Int("cache", simsvc.DefaultCacheSize, "LRU result-cache capacity")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-request simulation timeout (0 = none)")
	maxQueued := flag.Int("max-queued", 0, "queued-job bound before shedding 429s (0 = 8×workers, <0 = unbounded)")
	retries := flag.Int("retries", simsvc.DefaultRetries, "retry attempts for transient simulation failures")
	breakerThreshold := flag.Int("breaker-threshold", simsvc.DefaultBreakerThreshold,
		"consecutive failures before a (bench, model) pair is quarantined (0 = disabled)")
	traceCacheMB := flag.Int("trace-cache-mb", 0,
		"captured-trace LRU budget in MB (0 = 256 MB default, <0 disables capture/replay)")
	traceDir := flag.String("trace-dir", "",
		"directory for persisted SIGCAP01 captures (spill on evict, reload on miss; empty = in-memory only)")
	drainGrace := flag.Duration("drain-grace", 3*time.Second,
		"how long to stay up (unready but serving) after SIGTERM so load balancers rotate the shard out")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
	chaos := flag.String("chaos", "", "DEV ONLY: fault-injection spec, seed:point=kind[(dur)][@prob],... (see internal/faultinject)")
	flag.Parse()

	var faults *faultinject.Injector
	if *chaos != "" {
		var err error
		faults, err = faultinject.Parse(*chaos)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigserve: -chaos: %v\n", err)
			os.Exit(2)
		}
		log.Printf("sigserve: WARNING: chaos fault injection armed (%s) — do not use in production", faults)
	}

	svc := simsvc.New(simsvc.Config{
		Workers:          *workers,
		CacheSize:        *cacheSize,
		Timeout:          *timeout,
		MaxQueued:        *maxQueued,
		Retries:          *retries,
		BreakerThreshold: *breakerThreshold,
		TraceCacheMB:     *traceCacheMB,
		TraceDir:         *traceDir,
		Faults:           faults,
	})
	defer svc.Close()

	handler := simsvc.NewHandler(svc)
	if *pprofOn {
		// Wrap the service handler so the profiling endpoints live beside it
		// without touching http.DefaultServeMux.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Print("sigserve: pprof profiling enabled at /debug/pprof/")
	}

	server := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Sweeps stream for as long as the simulations take; only bound the
		// request-header read.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("sigserve: listening on %s (%d workers, cache %d, %d benchmarks, %d models)",
			*addr, svc.Workers(), *cacheSize, len(svc.Benchmarks()), len(svc.Models()))
		errc <- server.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "sigserve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Drain first: /readyz flips to 503 so a gateway rotates the shard
		// out, then the grace period lets in-flight gateway dispatches land
		// before the listener stops accepting.
		log.Print("sigserve: draining (readiness now 503)")
		svc.Drain()
		if *drainGrace > 0 {
			time.Sleep(*drainGrace)
		}
		log.Print("sigserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "sigserve: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}
