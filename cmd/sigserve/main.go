// Command sigserve is the significance-compression simulation daemon: an
// HTTP service that runs (benchmark × pipeline model) jobs from the paper's
// evaluation on demand, with a bounded worker pool, an LRU result cache,
// singleflight deduplication of concurrent identical requests, and a
// metrics registry.
//
// Endpoints:
//
//	GET  /healthz            liveness + uptime
//	GET  /metrics            counters and latency registry (JSON)
//	GET  /v1/benchmarks      served workload suite
//	GET  /v1/models          servable pipeline models
//	GET  /v1/simulate        ?bench=&model=&gran=   (POST: JSON body)
//	GET  /v1/sweep           ?gran=&bench=a,b&model=x,y   NDJSON stream
//
// Usage:
//
//	sigserve -addr :8080 -workers 8 -cache 256 -timeout 2m
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/simsvc"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (default GOMAXPROCS)")
	cacheSize := flag.Int("cache", simsvc.DefaultCacheSize, "LRU result-cache capacity")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-request simulation timeout (0 = none)")
	flag.Parse()

	svc := simsvc.New(simsvc.Config{
		Workers:   *workers,
		CacheSize: *cacheSize,
		Timeout:   *timeout,
	})
	defer svc.Close()

	server := &http.Server{
		Addr:    *addr,
		Handler: simsvc.NewHandler(svc),
		// Sweeps stream for as long as the simulations take; only bound the
		// request-header read.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("sigserve: listening on %s (%d workers, cache %d, %d benchmarks, %d models)",
			*addr, svc.Workers(), *cacheSize, len(svc.Benchmarks()), len(svc.Models()))
		errc <- server.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "sigserve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Print("sigserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "sigserve: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}
