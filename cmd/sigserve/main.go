// Command sigserve is the significance-compression simulation daemon: an
// HTTP service that runs (benchmark × pipeline model) jobs from the paper's
// evaluation on demand, with a bounded worker pool, an LRU result cache,
// singleflight deduplication of concurrent identical requests, a metrics
// registry, and resilience hardening (panic containment, admission control
// with load shedding, retry-with-backoff, and a per-job circuit breaker).
//
// Endpoints:
//
//	GET  /healthz            liveness + uptime
//	GET  /readyz             readiness (503 while draining or overloaded)
//	GET  /metrics            counters and latency registry (JSON)
//	GET  /v1/benchmarks      served workload suite
//	GET  /v1/models          servable pipeline models
//	GET  /v1/simulate        ?bench=&model=&gran=   (POST: JSON body)
//	GET  /v1/sweep           ?gran=&bench=a,b&model=x,y   NDJSON stream
//	GET  /v1/suite           ?model=&gran=   full paper table for one model
//	GET  /v1/partial         ?bench=a,b   mergeable suite share (cluster fan-in)
//	POST /v1/program         untrusted-program intake (JSON {lang, source}, X-Tenant
//	                         header); accepted programs run under "user:<sha256>" names
//	POST /v1/program/install fleet replication of an already-accepted program
//	GET  /v1/program/{id}    one accepted program; GET /v1/programs lists them
//
// Untrusted-program intake flags (see internal/workload for the validation
// wall each submission must clear):
//
//	-program-max-source-kb N     max submitted source size in KiB (0 = 256)
//	-program-max-insts N         probationary instruction budget (0 = 2M)
//	-program-tenant-max N        accepted programs per tenant (0 = 32)
//	-program-quota-per-min N     submissions per tenant per minute (0 = 30)
//	-program-install-per-min N   replica installs per minute, fleet-wide (0 = 120)
//	-program-install-token S     shared fleet secret required (X-Install-Token)
//	                             on POST /v1/program/install; empty leaves the
//	                             endpoint open (still hash-verified, rebuilt,
//	                             budget-clamped, and rate-metered)
//	-program-stored-mb N         resident registry budget in MB (0 = 16);
//	                             with -trace-dir set, evictions spill to
//	                             DIR/programs and reload on demand
//
// Tenant identity is the X-Tenant request header, trusted as sent: deploy
// behind a proxy that authenticates callers and sets it, or the per-tenant
// quotas are merely per-name.
//
// Usage:
//
//	sigserve -addr :8080 -workers 8 -cache 256 -timeout 2m
//
// Performance flags:
//
//	-trace-cache-mb N      memory budget for the LRU of captured benchmark
//	                       traces (capture once, replay for every model;
//	                       0 = 256 MB default, negative disables replay and
//	                       re-interprets every request)
//	-trace-dir DIR         back the trace cache with a capture directory
//	                       (SIGCAP02; legacy SIGCAP01 files stay readable):
//	                       new captures persist there, evicted captures
//	                       demote to disk, and cache misses reload from it —
//	                       shards sharing DIR (or a restarted daemon) start
//	                       warm instead of re-interpreting. SIGCAP02 reloads
//	                       are mapped read-only and streamed frame by frame,
//	                       so a warm start costs the footer index rather
//	                       than a full decode and co-located shards share
//	                       the capture pages through the OS page cache
//	-trace-mmap            map SIGCAP02 captures instead of decoding them
//	                       (default true; =false always eagerly decodes,
//	                       e.g. when DIR is on a network filesystem)
//	-pprof                 mount net/http/pprof under /debug/pprof/
//
// Resilience flags:
//
//	-max-queued N          shed (HTTP 429) once N jobs are waiting
//	                       (0 = 8×workers, negative = unbounded)
//	-retries N             retry transient failures up to N times
//	-breaker-threshold N   quarantine a (bench, model) after N consecutive
//	                       failures (HTTP 503; 0 disables the breaker)
//
// For resilience testing only, -chaos arms the deterministic fault
// injector with a seeded schedule, e.g.:
//
//	sigserve -chaos '42:pool.pickup=latency(50ms)@0.2,cache.get=error@0.1'
//
// Never enable -chaos in production: it deliberately fails requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/simsvc"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (default GOMAXPROCS)")
	cacheSize := flag.Int("cache", simsvc.DefaultCacheSize, "LRU result-cache capacity")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-request simulation timeout (0 = none)")
	maxQueued := flag.Int("max-queued", 0, "queued-job bound before shedding 429s (0 = 8×workers, <0 = unbounded)")
	retries := flag.Int("retries", simsvc.DefaultRetries, "retry attempts for transient simulation failures")
	breakerThreshold := flag.Int("breaker-threshold", simsvc.DefaultBreakerThreshold,
		"consecutive failures before a (bench, model) pair is quarantined (0 = disabled)")
	traceCacheMB := flag.Int("trace-cache-mb", 0,
		"captured-trace LRU budget in MB (0 = 256 MB default, <0 disables capture/replay)")
	traceDir := flag.String("trace-dir", "",
		"directory for persisted SIGCAP02 captures (spill on evict, reload on miss; empty = in-memory only)")
	traceMmap := flag.Bool("trace-mmap", true,
		"map SIGCAP02 captures from -trace-dir read-only and stream them (false = always decode eagerly)")
	programMaxSourceKB := flag.Int("program-max-source-kb", 0,
		"untrusted-program intake: max submitted source size in KiB (0 = 256 KiB default)")
	programMaxInsts := flag.Uint64("program-max-insts", 0,
		"untrusted-program intake: probationary retired-instruction budget, also the accepted benchmark's runaway guard (0 = 2M default)")
	programTenantMax := flag.Int("program-tenant-max", 0,
		"untrusted-program intake: accepted programs one tenant may hold (0 = 32 default)")
	programPerMin := flag.Int("program-quota-per-min", 0,
		"untrusted-program intake: submissions per tenant per minute, accepted or not (0 = 30 default)")
	programInstallPerMin := flag.Int("program-install-per-min", 0,
		"untrusted-program intake: fleet-wide replica installs per minute on /v1/program/install (0 = 120 default)")
	programInstallToken := flag.String("program-install-token", "",
		"shared fleet secret gating POST /v1/program/install (X-Install-Token header); empty leaves the endpoint open")
	programStoredMB := flag.Int("program-stored-mb", 0,
		"untrusted-program intake: resident registry byte budget in MB; evictions spill beside -trace-dir when set (0 = 16 MB default)")
	drainGrace := flag.Duration("drain-grace", 3*time.Second,
		"how long to stay up (unready but serving) after SIGTERM so load balancers rotate the shard out")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
	chaos := flag.String("chaos", "", "DEV ONLY: fault-injection spec, seed:point=kind[(dur)][@prob],... (see internal/faultinject)")
	flag.Parse()

	var faults *faultinject.Injector
	if *chaos != "" {
		var err error
		faults, err = faultinject.Parse(*chaos)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigserve: -chaos: %v\n", err)
			os.Exit(2)
		}
		log.Printf("sigserve: WARNING: chaos fault injection armed (%s) — do not use in production", faults)
	}

	// The intake registry spills evicted programs beside the trace captures
	// when -trace-dir is set: both survive restarts the same way.
	spillDir := ""
	if *traceDir != "" {
		spillDir = filepath.Join(*traceDir, "programs")
	}
	programs, err := workload.NewRegistry(workload.Options{
		MaxSourceBytes: *programMaxSourceKB << 10,
		MaxInsts:       *programMaxInsts,
		MaxStoredBytes: int64(*programStoredMB) << 20,
		SpillDir:       spillDir,
		TenantPrograms: *programTenantMax,
		SubmitPerMin:   *programPerMin,
		InstallPerMin:  *programInstallPerMin,
		Faults:         faults,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sigserve: program registry: %v\n", err)
		os.Exit(2)
	}

	svc := simsvc.New(simsvc.Config{
		Workers:          *workers,
		CacheSize:        *cacheSize,
		Timeout:          *timeout,
		MaxQueued:        *maxQueued,
		Retries:          *retries,
		BreakerThreshold: *breakerThreshold,
		TraceCacheMB:     *traceCacheMB,
		TraceDir:         *traceDir,
		TraceNoMmap:      !*traceMmap,
		Faults:           faults,
		Programs:         programs,
		InstallToken:     *programInstallToken,
	})
	defer svc.Close()

	handler := simsvc.NewHandler(svc)
	if *pprofOn {
		// Wrap the service handler so the profiling endpoints live beside it
		// without touching http.DefaultServeMux.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Print("sigserve: pprof profiling enabled at /debug/pprof/")
	}

	server := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Sweeps stream for as long as the simulations take; only bound the
		// request-header read.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("sigserve: listening on %s (%d workers, cache %d, %d benchmarks, %d models)",
			*addr, svc.Workers(), *cacheSize, len(svc.Benchmarks()), len(svc.Models()))
		errc <- server.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "sigserve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Drain first: /readyz flips to 503 so a gateway rotates the shard
		// out, then the grace period lets in-flight gateway dispatches land
		// before the listener stops accepting.
		log.Print("sigserve: draining (readiness now 503)")
		svc.Drain()
		if *drainGrace > 0 {
			time.Sleep(*drainGrace)
		}
		log.Print("sigserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "sigserve: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}
