// Command sigfuzz runs a differential fuzzing campaign: random MIPS
// programs are generated from sequential seeds and executed in lockstep on
// the plain interpreter and on the significance-compressed paths (Ext3
// register file, byte-serial ALU, instruction recoding, pipeline timing).
// Any divergence is shrunk to a minimal repro and written as a seed file
// that `go test ./internal/diffsim` replays once committed to
// internal/diffsim/testdata/.
//
// Usage:
//
//	sigfuzz -seeds 1000              # fixed-size campaign
//	sigfuzz -duration 5m             # time-boxed campaign
//	sigfuzz -repro path/to/bug.seed  # replay one seed file
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/diffsim"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 1000, "number of sequential seeds to check (ignored with -duration)")
		start    = flag.Uint64("start", 0, "first seed of the campaign")
		duration = flag.Duration("duration", 0, "run until this much time has elapsed instead of a fixed seed count")
		ops      = flag.Int("ops", 0, "instructions per generated program (0 = default)")
		loops    = flag.Int("loops", 0, "bounded loops per program (0 = default, negative = none)")
		data     = flag.Int("data", 0, "data segment bytes (0 = default)")
		timing   = flag.Bool("timing", false, "also check pipeline-timing determinism on every seed (slower)")
		out      = flag.String("out", ".", "directory for shrunken repro seed files")
		repro    = flag.String("repro", "", "replay a single seed file and exit")
		verbose  = flag.Bool("v", false, "log every seed checked")
	)
	flag.Parse()

	or := diffsim.DefaultOracle()
	cfg := diffsim.Config{Ops: *ops, DataBytes: *data, Loops: *loops}
	opts := diffsim.CheckOpts{Timing: *timing}

	if *repro != "" {
		os.Exit(replay(*repro, or, opts))
	}

	begin := time.Now()
	checked, steps := 0, uint64(0)
	for seed := *start; ; seed++ {
		if *duration > 0 {
			if time.Since(begin) >= *duration {
				break
			}
		} else if checked >= *seeds {
			break
		}
		p := diffsim.Generate(seed, cfg)
		rep := diffsim.Check(p, or, opts)
		checked++
		steps += rep.Steps
		if *verbose {
			fmt.Printf("seed %#x: %d insts retired\n", seed, rep.Steps)
		}
		if rep.OK() {
			continue
		}
		fmt.Fprintf(os.Stderr, "MISMATCH at seed %#x: %s\n", seed, rep.Mismatch)
		fmt.Fprintln(os.Stderr, "shrinking...")
		small := diffsim.Shrink(p, or, diffsim.ShrinkOpts{Check: opts})
		path := filepath.Join(*out, fmt.Sprintf("repro-%x.seed", seed))
		if err := os.WriteFile(path, small.Marshal(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing repro: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "minimal repro (%d ops) written to %s\n", len(small.Ops), path)
		}
		fmt.Fprintf(os.Stderr, "listing:\n%s", small.Listing())
		os.Exit(1)
	}
	fmt.Printf("sigfuzz: %d seeds checked, %d instructions retired, 0 mismatches (%.1fs)\n",
		checked, steps, time.Since(begin).Seconds())
}

func replay(path string, or *diffsim.Oracle, opts diffsim.CheckOpts) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	p, err := diffsim.UnmarshalProgram(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rep := diffsim.Check(p, or, opts)
	if !rep.OK() {
		fmt.Fprintf(os.Stderr, "MISMATCH: %s\nlisting:\n%s", rep.Mismatch, p.Listing())
		return 1
	}
	fmt.Printf("%s: OK, %d instructions retired\n", path, rep.Steps)
	return 0
}
