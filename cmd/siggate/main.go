// Command siggate is the cluster gateway for a fleet of sigserve shards.
// It exposes the same HTTP API as a single shard, so clients need not know
// the fleet exists: single simulation jobs are consistent-hashed by
// (benchmark, model) onto the shard whose result and trace caches are
// already hot, while suite and sweep evaluations are scattered over every
// shard and the partial results merged — a suite scattered over three
// shards encodes byte-identically to a single-process run.
//
// Shard loss is survived, not surfaced: an active readiness prober takes
// draining or dead shards out of rotation, a per-backend circuit breaker
// sidelines repeat offenders, retries honor the shards' load-aware
// Retry-After hints, straggling dispatches are hedged onto the next ring
// choice, and failed dispatches fail over along the ring. A request is
// answered wrong to no one: partitions that cannot be computed anywhere
// fail the whole suite, and sweep pairs that fail everywhere are emitted
// as flagged error lines and counted in the summary.
//
// Endpoints:
//
//	GET  /healthz            gateway liveness + uptime
//	GET  /readyz             200 while ≥1 shard is in rotation, else 503
//	GET  /metrics            gateway counters + per-backend health (JSON)
//	GET  /v1/benchmarks      the fleet's served suite
//	GET  /v1/models          servable pipeline models
//	GET  /v1/simulate        one job, routed by ring ownership (POST: JSON body)
//	GET  /v1/sweep           scattered (benchmark × model) grid, NDJSON stream
//	GET  /v1/suite           scattered + merged full evaluation, one JSON document;
//	                         ?bench=a,b scatters an explicit list (user programs included)
//	POST /v1/program         untrusted-program intake routed to the shard owning the
//	                         submission's content hash; accepted programs are
//	                         replicated fleet-wide so scattered work can land anywhere
//	GET  /v1/program/{id}    one accepted program, from the replica store or the fleet
//
// User programs submitted through the gateway ride the same ring as
// built-in benchmarks ("user:<sha256>" names hash like any other), and the
// gateway re-pushes its validated replicas to unconfirmed shards before
// every scatter, so a shard that was down at accept time still gets the
// program before work lands on it. Each shard re-verifies the content hash,
// rebuilds the assembly from source, and clamps the claimed budgets on
// install — replication never widens the shard's validation wall. When the
// shards gate installs behind -program-install-token, pass the same secret
// here as -install-token so replica pushes authenticate.
//
// Usage:
//
//	siggate -addr :8090 -backends localhost:8081,localhost:8082,localhost:8083
//
// Every shard must serve the same benchmark suite: the instruction recoder
// is profiled over the full served suite, so identical suites are what make
// scattered partials merge into the single-process answer.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	backends := flag.String("backends", "", "comma-separated sigserve base URLs (required)")
	retries := flag.Int("retries", 2, "same-shard retries after a 429/503 before failing over")
	retryAfterCap := flag.Duration("retry-after-cap", 5*time.Second, "upper bound on honored Retry-After hints")
	hedgeAfter := flag.Duration("hedge-after", 2*time.Second, "straggler hedge delay (<0 disables hedging)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "active /readyz probing period (<0 disables)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive failures before a shard leaves rotation")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long a broken shard stays out before a half-open trial")
	sweepInflight := flag.Int("sweep-inflight", 0, "max in-flight sweep jobs across the fleet (0 = 2 per shard)")
	installToken := flag.String("install-token", "",
		"shared fleet secret sent as X-Install-Token on replica pushes (must match the shards' -program-install-token)")
	flag.Parse()

	urls := strings.Split(*backends, ",")
	var cleaned []string
	for _, u := range urls {
		if u = strings.TrimSpace(u); u != "" {
			cleaned = append(cleaned, u)
		}
	}
	if len(cleaned) == 0 {
		fmt.Fprintln(os.Stderr, "siggate: -backends is required (comma-separated sigserve URLs)")
		os.Exit(2)
	}

	gw, err := cluster.New(cluster.Config{
		Backends:         cleaned,
		Retries:          *retries,
		RetryAfterCap:    *retryAfterCap,
		HedgeAfter:       *hedgeAfter,
		ProbeInterval:    *probeInterval,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		SweepInflight:    *sweepInflight,
		InstallToken:     *installToken,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "siggate: %v\n", err)
		os.Exit(2)
	}
	defer gw.Close()

	server := &http.Server{
		Addr:    *addr,
		Handler: cluster.NewHandler(gw),
		// Sweeps stream for as long as the fleet takes; only bound the
		// request-header read.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("siggate: listening on %s, fronting %d shards: %s", *addr, len(cleaned), strings.Join(cleaned, ", "))
		errc <- server.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "siggate: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Print("siggate: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "siggate: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}
