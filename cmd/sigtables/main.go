// Command sigtables regenerates every table and figure of "Very Low Power
// Pipelines using Significance Compression" (MICRO-33, 2000) from the
// simulator and workload suite in this repository.
//
// Usage:
//
//	sigtables              # print everything
//	sigtables -exp table5  # one experiment: table1|table2|table3|table5|
//	                       # table6|fig4|fig6|fig8|fig10|bottleneck|fetch
//	sigtables -csv         # CSV instead of aligned text
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate (all, table1, table2, table3, table4, table5, table6, fig4, fig6, fig8, fig10, bottleneck, ablation-scheme, ablation-bp, ablation-partition, energy, bm-baseline, cachesweep, interpretation, fetch)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonOut := flag.Bool("json", false, "emit the whole evaluation as JSON")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "benchmark-level worker count for the evaluation (1 = sequential)")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "running the full suite through every model (%d workers)...\n", *parallel)
	r, err := experiments.RunParallel(context.Background(), *parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sigtables: %v\n", err)
		os.Exit(1)
	}

	if *jsonOut {
		data, err := r.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigtables: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		fmt.Println()
		return
	}

	type entry struct {
		name string
		tbl  *stats.Table
	}
	entries := []entry{
		{"table1", r.Table1()},
		{"table2", r.Table2()},
		{"table3", r.Table3()},
		{"table4", experiments.Table4()},
		{"table5", r.Table5()},
		{"table6", r.Table6()},
		{"fig4", r.Fig4()},
		{"fig6", r.Fig6()},
		{"fig8", r.Fig8()},
		{"fig10", r.Fig10()},
		{"bottleneck", r.Bottleneck()},
		{"ablation-scheme", r.AblationScheme()},
		{"ablation-bp", r.AblationPrediction()},
		{"ablation-partition", r.AblationPartition()},
		{"energy", r.EnergySummary()},
		{"bm-baseline", r.BaselineComparison()},
	}

	emit := func(t *stats.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}

	if *exp == "fetch" {
		fmt.Println(r.FetchSummary())
		return
	}
	if *exp == "interpretation" || *exp == "all" {
		tbl, err := experiments.AblationInterpretation()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigtables: %v\n", err)
			os.Exit(1)
		}
		emit(tbl)
		if *exp == "interpretation" {
			return
		}
	}
	if *exp == "cachesweep" || *exp == "all" {
		sweep, err := experiments.CacheSweep(experiments.DefaultCacheSweepSizes())
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigtables: %v\n", err)
			os.Exit(1)
		}
		emit(sweep)
		if *exp == "cachesweep" {
			return
		}
	}
	found := false
	for _, e := range entries {
		if *exp == "all" || *exp == e.name {
			emit(e.tbl)
			found = true
		}
	}
	if *exp == "all" {
		fmt.Println(r.FetchSummary())
		return
	}
	if !found {
		fmt.Fprintf(os.Stderr, "sigtables: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
