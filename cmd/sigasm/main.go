// Command sigasm assembles a MIPS-subset source file, optionally
// disassembles or runs it on the functional interpreter, and reports the
// significance-compression view of the program.
//
// Usage:
//
//	sigasm prog.s             # assemble, print disassembly
//	sigasm -run prog.s        # assemble and execute (prints output/exit)
//	sigasm -compress prog.s   # per-instruction fetch sizes under §2.3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/icomp"
	"repro/internal/isa"
	"repro/internal/mem"
)

func main() {
	run := flag.Bool("run", false, "execute the program after assembling")
	compress := flag.Bool("compress", false, "show per-instruction compressed fetch sizes")
	maxInsts := flag.Uint64("max", 100_000_000, "instruction limit when running")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sigasm [-run|-compress] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "sigasm: %v\n", err)
		os.Exit(1)
	}
	p, err := asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "sigasm: %v\n", err)
		os.Exit(1)
	}

	switch {
	case *run:
		m := mem.NewMemory()
		p.LoadInto(m)
		c := cpu.New(m, p.Entry, asm.DefaultStackTop)
		n, err := c.Run(*maxInsts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigasm: runtime error after %d instructions: %v\n", n, err)
			os.Exit(1)
		}
		if !c.Done {
			fmt.Fprintf(os.Stderr, "sigasm: instruction limit (%d) reached\n", *maxInsts)
			os.Exit(1)
		}
		os.Stdout.Write(c.Output.Bytes())
		fmt.Printf("\n[%d instructions, exit code %d]\n", n, c.ExitCode)
	case *compress:
		rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
		var total int
		for i, w := range p.Text {
			pc := p.TextBase + uint32(4*i)
			n := rc.FetchBytes(w)
			total += n
			fmt.Printf("%08x:  %d bytes  %s\n", pc, n, isa.Decode(w).Disassemble(pc))
		}
		fmt.Printf("static mean: %.2f bytes/instruction\n", float64(total)/float64(len(p.Text)))
	default:
		fmt.Print(asm.Disassemble(p))
		fmt.Printf("text: %d words at %#x; data: %d bytes at %#x; entry %#x\n",
			len(p.Text), p.TextBase, len(p.Data), p.DataBase, p.Entry)
	}
}
