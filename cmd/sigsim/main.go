// Command sigsim runs one benchmark of the suite on one (or every)
// pipeline model and reports CPI, stall breakdown and per-stage activity
// reductions.
//
// Usage:
//
//	sigsim -list                      # list benchmarks and models
//	sigsim -bench rawcaudio           # all models on one benchmark
//	sigsim -bench crc32 -model byteserial
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/activity"
	"repro/internal/bench"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	benchName := flag.String("bench", "", "benchmark to run (see -list)")
	modelName := flag.String("model", "", "pipeline model (default: all)")
	pipeDiagram := flag.Int("pipe", 0, "render a pipeline diagram of the first N instructions (requires -model)")
	list := flag.Bool("list", false, "list benchmarks and models")
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:")
		for _, b := range bench.All() {
			fmt.Printf("  %-10s %s\n", b.Name, b.Description)
		}
		fmt.Println("models:")
		for _, m := range pipeline.AllNames() {
			fmt.Printf("  %s\n", m)
		}
		return
	}

	b, ok := bench.ByName(*benchName)
	if !ok {
		fmt.Fprintf(os.Stderr, "sigsim: unknown benchmark %q (use -list)\n", *benchName)
		os.Exit(2)
	}

	names := pipeline.AllNames()
	if *modelName != "" {
		if pipeline.New(*modelName) == nil {
			fmt.Fprintf(os.Stderr, "sigsim: unknown model %q (use -list)\n", *modelName)
			os.Exit(2)
		}
		names = []string{*modelName}
	}

	rc, _, err := trace.SuiteRecoder(bench.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "sigsim: %v\n", err)
		os.Exit(1)
	}

	c, err := b.NewCPU()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sigsim: %v\n", err)
		os.Exit(1)
	}
	models := make([]*pipeline.Model, len(names))
	consumers := make([]trace.Consumer, 0, len(names)+1)
	var timeline *pipeline.Timeline
	for i, n := range names {
		models[i] = pipeline.New(n)
		if *pipeDiagram > 0 && len(names) == 1 {
			timeline = pipeline.NewTimeline(models[i], *pipeDiagram)
		}
		consumers = append(consumers, models[i])
	}
	if *pipeDiagram > 0 && timeline == nil {
		fmt.Fprintln(os.Stderr, "sigsim: -pipe requires a single -model")
		os.Exit(2)
	}
	byteCol := activity.NewCollector(1, rc, c.Mem)
	consumers = append(consumers, byteCol)

	if err := trace.RunOn(c, b, rc, consumers...); err != nil {
		fmt.Fprintf(os.Stderr, "sigsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark %s: %d instructions, checksum %#08x verified\n\n",
		b.Name, c.Retired, b.Checksum)

	if timeline != nil {
		fmt.Print(timeline.Render())
		fmt.Println()
	}

	var baseCPI float64
	for _, m := range models {
		if m.Name() == pipeline.NameBaseline32 {
			baseCPI = m.Result().CPI()
		}
	}
	t := stats.NewTable("CPI", "model", "cycles", "CPI", "vs baseline32")
	for _, m := range models {
		r := m.Result()
		ratio := "n/a"
		if baseCPI > 0 {
			ratio = stats.Ratio(r.CPI(), baseCPI)
		}
		t.AddStringRow(r.Model, fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%.3f", r.CPI()), ratio)
	}
	fmt.Println(t.String())

	for _, m := range models {
		r := m.Result()
		if len(r.Stalls) == 0 {
			continue
		}
		kinds := make([]string, 0, len(r.Stalls))
		for k := range r.Stalls {
			kinds = append(kinds, string(k))
		}
		sort.Strings(kinds)
		fmt.Printf("stalls %s:", r.Model)
		for _, k := range kinds {
			fmt.Printf(" %s=%d", k, r.Stalls[pipeline.StallKind(k)])
		}
		fmt.Println()
	}

	fmt.Println()
	at := stats.NewTable("Activity reduction (byte granularity)", "stage", "reduction")
	row := byteCol.Counts().Row()
	for i, s := range activity.Stages() {
		at.AddStringRow(s, stats.Pct(row[i]))
	}
	fmt.Println(at.String())
}
