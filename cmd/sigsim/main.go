// Command sigsim runs one benchmark of the suite on one (or every)
// pipeline model and reports CPI, stall breakdown and per-stage activity
// reductions.
//
// Usage:
//
//	sigsim -list                      # list benchmarks and models
//	sigsim -bench rawcaudio           # all models on one benchmark
//	sigsim -bench crc32 -model byteserial
//	sigsim -bench crc32 -json         # machine-readable (sigserve schema)
//	sigsim -bench all -parallel 4     # full-suite evaluation, 4 workers
//	sigsim -bench all -replay=false   # re-interpret per model (reference path)
//	sigsim -bench crc32 -capture-dir ./caps   # persist/reuse SIGCAP02 captures (mapped + streamed)
//	sigsim -bench crc32 -capture-dir ./caps -mmap=false   # eager decode instead of streaming
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"repro/internal/activity"
	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	benchName := flag.String("bench", "", "benchmark to run, or \"all\" for the full-suite evaluation (see -list)")
	modelName := flag.String("model", "", "pipeline model (default: all)")
	pipeDiagram := flag.Int("pipe", 0, "render a pipeline diagram of the first N instructions (requires -model)")
	jsonOut := flag.Bool("json", false, "emit machine-readable results (the schema shared with sigserve)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "benchmark-level worker count for -bench all (1 = sequential)")
	replay := flag.Bool("replay", true,
		"for -bench all: interpret each benchmark once and replay the captured trace per model (false = re-interpret, the reference path)")
	captureDir := flag.String("capture-dir", "",
		"capture directory (SIGCAP02; legacy SIGCAP01 files stay readable): replay a single -bench from its persisted capture, interpreting and persisting it on first use")
	useMmap := flag.Bool("mmap", true,
		"with -capture-dir: map SIGCAP02 captures read-only and stream frames instead of decoding the whole trace up front (false = always eager decode)")
	fetchSweep := flag.Bool("fetchsweep", false,
		"sweep fetch bandwidth (bytes/cycle) over the suite through the byte-fetch frontends and print the CPI table")
	list := flag.Bool("list", false, "list benchmarks and models")
	flag.Parse()

	if *fetchSweep {
		results, err := experiments.FetchSweep(experiments.DefaultFetchSweepWidths())
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.FetchSweepTable(results).String())
		return
	}

	if *list {
		fmt.Println("benchmarks:")
		for _, b := range bench.All() {
			fmt.Printf("  %-10s %s\n", b.Name, b.Description)
		}
		fmt.Println("models:")
		for _, m := range pipeline.AllNames() {
			fmt.Printf("  %s\n", m)
		}
		return
	}

	if *benchName == "all" {
		runSuite(*parallel, *jsonOut, *replay)
		return
	}

	b, ok := bench.ByName(*benchName)
	if !ok {
		fmt.Fprintf(os.Stderr, "sigsim: unknown benchmark %q (use -list)\n", *benchName)
		os.Exit(2)
	}

	var models []*pipeline.Model
	if *modelName != "" {
		// Validate by constructing the single instance once and reuse it
		// for the run.
		m := pipeline.New(*modelName)
		if m == nil {
			fmt.Fprintf(os.Stderr, "sigsim: unknown model %q (use -list)\n", *modelName)
			os.Exit(2)
		}
		models = []*pipeline.Model{m}
	} else {
		models = pipeline.NewAll()
	}

	rc, _, err := trace.SuiteRecoder(bench.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "sigsim: %v\n", err)
		os.Exit(1)
	}

	// With -capture-dir the job replays a persisted capture over column
	// blocks (interpreting and persisting it on first use); otherwise it
	// interprets live. Both paths are bit-identical, and so are the
	// streaming (mapped SIGCAP02) and eager replay tiers.
	var (
		cp     trace.Replayer
		runMem *mem.Memory
	)
	c, err := b.NewCPU()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sigsim: %v\n", err)
		os.Exit(1)
	}
	runMem = c.Mem
	if *captureDir != "" {
		cp, err = loadOrCapture(*captureDir, b, *useMmap)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigsim: %v\n", err)
			os.Exit(1)
		}
		// The collectors read program memory; give them a fresh image the
		// replay applies the captured stores to.
		runMem, err = cp.NewMemory()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigsim: %v\n", err)
			os.Exit(1)
		}
	}
	consumers := make([]trace.Consumer, 0, len(models)+2)
	var timeline *pipeline.Timeline
	for _, m := range models {
		if *pipeDiagram > 0 && len(models) == 1 {
			timeline = pipeline.NewTimeline(m, *pipeDiagram)
		}
		consumers = append(consumers, m)
	}
	if *pipeDiagram > 0 && timeline == nil {
		fmt.Fprintln(os.Stderr, "sigsim: -pipe requires a single -model")
		os.Exit(2)
	}
	byteCol := activity.NewCollector(1, rc, runMem)
	consumers = append(consumers, byteCol)
	var halfCol *activity.Collector
	if *jsonOut {
		// The shared schema reports both granularities.
		halfCol = activity.NewCollector(2, rc, runMem)
		consumers = append(consumers, halfCol)
	}

	retired := uint64(0)
	if cp != nil {
		if err := cp.ReplayBlocksOn(context.Background(), runMem, rc, consumers...); err != nil {
			fmt.Fprintf(os.Stderr, "sigsim: %v\n", err)
			os.Exit(1)
		}
		retired = uint64(cp.Len())
	} else {
		if err := trace.RunOn(c, b, rc, consumers...); err != nil {
			fmt.Fprintf(os.Stderr, "sigsim: %v\n", err)
			os.Exit(1)
		}
		retired = c.Retired
	}

	if *jsonOut {
		br := experiments.BenchResult{
			Name:    b.Name,
			Insts:   retired,
			CPI:     make(map[string]float64),
			ByteAct: byteCol.Counts(),
			HalfAct: halfCol.Counts(),
		}
		for _, m := range models {
			br.CPI[m.Name()] = m.Result().CPI()
		}
		out, err := json.MarshalIndent(experiments.EncodeBench(br), "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}

	fmt.Printf("benchmark %s: %d instructions, checksum %#08x verified\n\n",
		b.Name, retired, b.Checksum)

	if timeline != nil {
		fmt.Print(timeline.Render())
		fmt.Println()
	}

	var baseCPI float64
	for _, m := range models {
		if m.Name() == pipeline.NameBaseline32 {
			baseCPI = m.Result().CPI()
		}
	}
	t := stats.NewTable("CPI", "model", "cycles", "CPI", "vs baseline32")
	for _, m := range models {
		r := m.Result()
		ratio := "n/a"
		if baseCPI > 0 {
			ratio = stats.Ratio(r.CPI(), baseCPI)
		}
		t.AddStringRow(r.Model, fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%.3f", r.CPI()), ratio)
	}
	fmt.Println(t.String())

	for _, m := range models {
		r := m.Result()
		if len(r.Stalls) == 0 {
			continue
		}
		kinds := make([]string, 0, len(r.Stalls))
		for k := range r.Stalls {
			kinds = append(kinds, string(k))
		}
		sort.Strings(kinds)
		fmt.Printf("stalls %s:", r.Model)
		for _, k := range kinds {
			fmt.Printf(" %s=%d", k, r.Stalls[pipeline.StallKind(k)])
		}
		fmt.Println()
	}

	for _, m := range models {
		fu := m.FetchUnit()
		if fu == nil {
			continue
		}
		fmt.Printf("fetch %s: %d B/cycle, buffer %d B (max occupancy %d), into-decode IPC %.3f, pairs %d, buffer stalls %d\n",
			m.Name(), fu.BytesPerCycle, fu.BufferBytes, fu.MaxOccupancy,
			fu.IntoDecodeIPC(m.Result().Insts), fu.DualIssued, fu.BufferStalls)
	}

	fmt.Println()
	at := stats.NewTable("Activity reduction (byte granularity)", "stage", "reduction")
	row := byteCol.Counts().Row()
	for i, s := range activity.Stages() {
		at.AddStringRow(s, stats.Pct(row[i]))
	}
	fmt.Println(at.String())
}

// loadOrCapture resolves b's capture through dir: a valid persisted
// capture file is reused, anything else (missing, corrupt, wrong suite
// build) falls back to interpreting, and a fresh capture is persisted for
// next time. With useMmap a SIGCAP02 file is mapped and streamed — replay
// memory stays at one frame, not the whole decoded trace; legacy SIGCAP01
// files (and useMmap=false) take the eager decode.
func loadOrCapture(dir string, b bench.Benchmark, useMmap bool) (trace.Replayer, error) {
	path := trace.CaptureFilePath(dir, b.Name)
	if useMmap {
		if mc, err := trace.OpenMappedCapture(path); err == nil {
			if got := mc.Bench(); got.Name == b.Name && got.Checksum == b.Checksum {
				fmt.Fprintf(os.Stderr, "sigsim: streaming mapped capture %s\n", path)
				return mc, nil
			}
			mc.Close()
		}
	}
	if cp, err := trace.ReadCaptureFile(path); err == nil &&
		cp.Bench().Name == b.Name && cp.Bench().Checksum == b.Checksum {
		fmt.Fprintf(os.Stderr, "sigsim: replaying persisted capture %s\n", path)
		return cp, nil
	}
	cp, err := trace.CaptureRun(context.Background(), b)
	if err != nil {
		return nil, err
	}
	if p, err := trace.WriteCaptureFile(dir, cp); err == nil {
		fmt.Fprintf(os.Stderr, "sigsim: persisted capture to %s\n", p)
	}
	return cp, nil
}

// runSuite executes the full evaluation (every benchmark through every
// model) with benchmark-level parallelism and prints a per-benchmark CPI
// table, or the complete machine-readable evaluation with -json. With
// replay (the default) each benchmark is interpreted once into a captured
// trace that is replayed per model; both paths produce byte-identical
// output.
func runSuite(workers int, jsonOut, replay bool) {
	fmt.Fprintf(os.Stderr, "sigsim: running the full suite (%d workers, replay=%v)...\n", workers, replay)
	run := experiments.RunSuite
	if !replay {
		run = experiments.RunSuiteLive
	}
	r, err := run(context.Background(), bench.All(), workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sigsim: %v\n", err)
		os.Exit(1)
	}
	if jsonOut {
		data, err := r.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigsim: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		fmt.Println()
		return
	}
	models := pipeline.AllNames()
	t := stats.NewTable("CPI (full suite)", append([]string{"benchmark"}, models...)...)
	for _, br := range r.Bench {
		cells := []string{br.Name}
		for _, m := range models {
			cells = append(cells, fmt.Sprintf("%.3f", br.CPI[m]))
		}
		t.AddStringRow(cells...)
	}
	avg := []string{"AVG"}
	for _, m := range models {
		avg = append(avg, fmt.Sprintf("%.3f", r.MeanCPI(m)))
	}
	t.AddStringRow(avg...)
	fmt.Println(t.String())
	fmt.Println(r.FetchSummary())
}
