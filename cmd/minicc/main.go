// Command minicc compiles minic (the repository's C subset) to MIPS-subset
// assembly, optionally running the result on the functional interpreter —
// the stand-in for the paper's gcc toolchain.
//
// Usage:
//
//	minicc prog.c            # emit assembly on stdout
//	minicc -run prog.c       # compile and execute
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/minic"
)

func main() {
	run := flag.Bool("run", false, "execute the compiled program")
	maxInsts := flag.Uint64("max", 100_000_000, "instruction limit when running")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [-run] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "minicc: %v\n", err)
		os.Exit(1)
	}
	if !*run {
		text, err := minic.CompileToAsm(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "minicc: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(text)
		return
	}
	p, err := minic.Compile(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "minicc: %v\n", err)
		os.Exit(1)
	}
	m := mem.NewMemory()
	p.LoadInto(m)
	c := cpu.New(m, p.Entry, asm.DefaultStackTop)
	n, err := c.Run(*maxInsts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "minicc: runtime error after %d instructions: %v\n", n, err)
		os.Exit(1)
	}
	if !c.Done {
		fmt.Fprintf(os.Stderr, "minicc: instruction limit reached\n")
		os.Exit(1)
	}
	os.Stdout.Write(c.Output.Bytes())
	fmt.Printf("\n[%d instructions, exit code %d]\n", n, c.ExitCode)
}
