// Command sigtrace records benchmark execution traces to disk and replays
// them through pipeline models and activity collectors — the classic
// trace-driven-simulation workflow (record once, study many times).
//
// Usage:
//
//	sigtrace -record -bench rawcaudio -o rawcaudio.trc
//	sigtrace -replay rawcaudio.trc -model byteserial
//	sigtrace -replay rawcaudio.trc            # all models + activity
//	sigtrace -replay caps/crc32.sigcap        # persisted captures replay too:
//	                                          # SIGCAP02 streams from a mapping,
//	                                          # SIGCAP01 decodes eagerly
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro/internal/activity"
	"repro/internal/bench"
	"repro/internal/icomp"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	record := flag.Bool("record", false, "record a benchmark trace")
	benchName := flag.String("bench", "", "benchmark to record")
	out := flag.String("o", "trace.trc", "output file for -record")
	replay := flag.String("replay", "", "trace file to replay")
	modelName := flag.String("model", "", "pipeline model for replay (default: all)")
	flag.Parse()

	switch {
	case *record:
		if err := doRecord(*benchName, *out); err != nil {
			fmt.Fprintf(os.Stderr, "sigtrace: %v\n", err)
			os.Exit(1)
		}
	case *replay != "":
		if err := doReplay(*replay, *modelName); err != nil {
			fmt.Fprintf(os.Stderr, "sigtrace: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doRecord(name, out string) error {
	b, ok := bench.ByName(name)
	if !ok {
		return fmt.Errorf("unknown benchmark %q (have: %v)", name, bench.Names())
	}
	rc, _, err := trace.SuiteRecoder(bench.All())
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	if _, err := trace.Run(b, rc, w); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d instructions of %s to %s\n", w.Count(), b.Name, out)
	return nil
}

func doReplay(path, modelName string) error {
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())

	names := pipeline.AllNames()
	if modelName != "" {
		if pipeline.New(modelName) == nil {
			return fmt.Errorf("unknown model %q", modelName)
		}
		names = []string{modelName}
	}
	models := make([]*pipeline.Model, len(names))
	consumers := make([]trace.Consumer, 0, len(names))
	for i, n := range names {
		models[i] = pipeline.New(n)
		consumers = append(consumers, models[i])
	}
	patterns := activity.NewPatternStats()
	consumers = append(consumers, patterns)

	// Interrupt aborts the replay between records instead of leaving the
	// process to grind through the rest of a long trace.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Dispatch on the file's magic: SIGCAP02 captures stream frame by frame
	// out of a read-only mapping (replay memory stays at one frame),
	// SIGCAP01 captures decode eagerly, and anything else is a SIGTRC01
	// event trace for the scalar reader.
	n, how, err := replayFile(ctx, path, rc, consumers)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d instructions from %s (%s)\n\n", n, path, how)
	t := stats.NewTable("CPI (replayed)", "model", "CPI")
	for _, m := range models {
		t.AddStringRow(m.Name(), fmt.Sprintf("%.3f", m.Result().CPI()))
	}
	fmt.Println(t.String())
	fmt.Printf("operand 2-bit coverage: %.1f%%\n", patterns.TwoBitCoverage())
	return nil
}

// replayFile feeds path's trace into consumers, picking the engine by the
// file's leading magic, and returns the instruction count plus a short
// description of the path taken.
func replayFile(ctx context.Context, path string, rc *icomp.Recoder, consumers []trace.Consumer) (uint64, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, "", err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err == nil {
		switch string(magic[:]) {
		case "SIGCAP02":
			mc, err := trace.OpenMappedCapture(path)
			if err != nil {
				return 0, "", err
			}
			defer mc.Close()
			m, err := mc.NewMemory()
			if err != nil {
				return 0, "", err
			}
			if err := mc.ReplayBlocksOn(ctx, m, rc, consumers...); err != nil {
				return 0, "", err
			}
			return uint64(mc.Len()), "SIGCAP02, streamed from mapping", nil
		case "SIGCAP01":
			cp, err := trace.ReadCaptureFile(path)
			if err != nil {
				return 0, "", err
			}
			m, err := cp.NewMemory()
			if err != nil {
				return 0, "", err
			}
			if err := cp.ReplayBlocksOn(ctx, m, rc, consumers...); err != nil {
				return 0, "", err
			}
			return uint64(cp.Len()), "SIGCAP01, eager decode", nil
		}
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, "", err
	}
	r, err := trace.NewReader(f)
	if err != nil {
		return 0, "", err
	}
	n, err := r.ReplayCtx(ctx, rc, consumers...)
	if err != nil {
		return 0, "", err
	}
	return n, "SIGTRC01 event trace", nil
}
