// Custom kernel: author your own MIPS assembly workload, validate it
// functionally, and measure how much a significance-compressed pipeline
// would save on it — the workflow for evaluating a new embedded kernel
// against the paper's designs.
package main

import (
	"fmt"
	"log"

	"repro/internal/activity"
	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/icomp"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// A saturating 16-bit dot product — typical DSP inner loop.
const kernel = `
main:
    la   $s0, va
    la   $s1, vb
    li   $s2, 64         # elements
    li   $s3, 0          # accumulator
dot:
    lh   $t0, 0($s0)
    lh   $t1, 0($s1)
    mult $t0, $t1
    mflo $t2
    addu $s3, $s3, $t2
    addiu $s0, $s0, 2
    addiu $s1, $s1, 2
    addiu $s2, $s2, -1
    bgtz $s2, dot
    move $a0, $s3
    li   $v0, 1
    syscall
    li   $v0, 10
    syscall
.data
va: .half  3,  -1,  4,   1,  -5,  9,  2, -6,  5,  3,  5,  -8,  9,  7,  9, 3
    .half  2,  -7,  1,   8,   2,  8, -1,  8,  2,  8,  4,   5,  9,  0,  4, 5
    .half  2,   3,  5,  -3,   6,  0,  2,  8,  7,  4,  7,   1,  3, -5,  2, 6
    .half  6,   2,  3,   0,   7,  9,  5,  0,  2,  8,  8,   4,  1,  9,  7, 1
vb: .half  1,   4,  1,   4,   2,  1,  3,  5,  6,  2,  3,   7,  3,  0,  9, 5
    .half  0,   5,  8,  -8,   8,  2,  0,  9,  4,  9,  4,   7,  1,  0,  2, 1
    .half -3,   9,  8,   5,   4,  8,  8,  7,  5,  6,  4,   3,  2,  1,  0, 9
    .half  8,   7,  6,   5,   4,  3,  2,  1,  9,  8,  7,   6,  5,  4,  3, 2
`

func main() {
	prog, err := asm.Assemble(kernel)
	if err != nil {
		log.Fatal(err)
	}

	// Functional check first.
	m := mem.NewMemory()
	prog.LoadInto(m)
	c := cpu.New(m, prog.Entry, asm.DefaultStackTop)
	if _, err := c.Run(100_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dot product = %s (%d instructions)\n\n", c.Output.String(), c.Retired)

	// Now the measurement run: re-execute under the trace harness with a
	// static recoder (a custom kernel has no suite profile).
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	m2 := mem.NewMemory()
	prog.LoadInto(m2)
	c2 := cpu.New(m2, prog.Entry, asm.DefaultStackTop)

	byteCol := activity.NewCollector(1, rc, c2.Mem)
	base := pipeline.NewBaseline32()
	serial := pipeline.NewByteSerial()
	bypass := pipeline.NewParallelSkewedBypass()

	for !c2.Done {
		e, err := c2.Step()
		if err != nil {
			log.Fatal(err)
		}
		ev := trace.Annotate(e, rc)
		byteCol.Consume(ev)
		base.Consume(ev)
		serial.Consume(ev)
		bypass.Consume(ev)
	}

	fmt.Println("pipeline cost on this kernel:")
	b := base.Result()
	for _, r := range []pipeline.Result{b, serial.Result(), bypass.Result()} {
		fmt.Printf("  %-14s CPI %.3f (%+.1f%% vs baseline)\n",
			r.Model, r.CPI(), 100*(r.CPI()/b.CPI()-1))
	}

	fmt.Println("\nactivity saved by significance compression (byte granularity):")
	row := byteCol.Counts().Row()
	for i, s := range activity.Stages() {
		fmt.Printf("  %-14s %5.1f%%\n", s, row[i])
	}
}
