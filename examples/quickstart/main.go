// Quickstart: the core significance-compression API in five minutes —
// compress values, inspect extension bits, run the significance ALU, and
// execute a small assembly program on the functional interpreter.
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sig"
	"repro/internal/sigalu"
)

func main() {
	// 1. Significance compression of data values (§2.1). The paper's own
	// examples: 00000004, FFFFF504, 10000009, FFE70004.
	fmt.Println("== significance compression (3-bit per-byte extension scheme)")
	for _, v := range []uint32{0x00000004, 0xfffff504, 0x10000009, 0xffe70004, 0x12345678} {
		stored, ext := sig.CompressExt3(v)
		fmt.Printf("  %08x  pattern=%s  ext=%03b  stored bytes=% x  (%d data bits + %d ext bits)\n",
			v, sig.PatternOf(v), uint8(ext), stored, 8*len(stored), sig.Ext3Bits)
	}

	// 2. The significance ALU (§2.5): bit-exact results, activity only on
	// the bytes that matter.
	fmt.Println("\n== significance ALU")
	for _, p := range [][2]uint32{{3, 4}, {0x01, 0x7f}, {0x12345678, 0x1}} {
		r := sigalu.Add(p[0], p[1])
		fmt.Printf("  %#x + %#x = %#x   bytes operated: %d of 4\n",
			p[0], p[1], r.Value, r.BlocksOperated)
	}

	// 3. Run a program: sum an array, return the result via syscall.
	fmt.Println("\n== functional interpreter")
	prog, err := asm.Assemble(`
main:
    la   $t0, nums
    li   $t1, 8          # count
    li   $t2, 0          # sum
loop:
    lw   $t3, 0($t0)
    addu $t2, $t2, $t3
    addiu $t0, $t0, 4
    addiu $t1, $t1, -1
    bgtz $t1, loop
    move $a0, $t2
    li   $v0, 1          # print_int
    syscall
    li   $v0, 10         # exit
    syscall
.data
nums: .word 3, 1, 4, 1, 5, 9, 2, 6
`)
	if err != nil {
		log.Fatal(err)
	}
	m := mem.NewMemory()
	prog.LoadInto(m)
	c := cpu.New(m, prog.Entry, asm.DefaultStackTop)
	if _, err := c.Run(10_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  program output: %q (retired %d instructions)\n",
		c.Output.String(), c.Retired)
}
