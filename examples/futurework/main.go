// Future work: run the three studies the paper explicitly defers — branch
// prediction (§3), alternative extension-bit schemes and word partitions
// (§2.1) — on a single benchmark, using the library's extension APIs.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/activity"
	"repro/internal/bench"
	"repro/internal/pipeline"
	"repro/internal/sig"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	name := flag.String("bench", "rawcaudio", "benchmark to study")
	flag.Parse()

	b, ok := bench.ByName(*name)
	if !ok {
		log.Fatalf("unknown benchmark %q; available: %v", *name, bench.Names())
	}
	rc, _, err := trace.SuiteRecoder(bench.All())
	if err != nil {
		log.Fatal(err)
	}

	c, err := b.NewCPU()
	if err != nil {
		log.Fatal(err)
	}
	// Consumers: predicted + unpredicted pipelines, both byte schemes, and
	// the partition tally.
	base := pipeline.NewBaseline32()
	baseBP := pipeline.NewPredicted(pipeline.NameBaseline32)
	serial := pipeline.NewByteSerial()
	serialBP := pipeline.NewPredicted(pipeline.NameByteSerial)
	s3 := activity.NewCollector(1, rc, c.Mem)
	s2 := activity.NewCollectorScheme(1, activity.Scheme2, rc, c.Mem)
	parts := activity.NewPartitionStats()

	if err := trace.RunOn(c, b, rc, base, baseBP, serial, serialBP, s3, s2, parts); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s (%d instructions)\n\n", b.Name, c.Retired)

	bp := stats.NewTable("Branch prediction (512-entry bimodal)", "model", "CPI", "with prediction", "accuracy")
	bp.AddStringRow(base.Name(),
		fmt.Sprintf("%.3f", base.Result().CPI()),
		fmt.Sprintf("%.3f", baseBP.Result().CPI()),
		fmt.Sprintf("%.1f%%", 100*baseBP.PredictorAccuracy()))
	bp.AddStringRow(serial.Name(),
		fmt.Sprintf("%.3f", serial.Result().CPI()),
		fmt.Sprintf("%.3f", serialBP.Result().CPI()),
		fmt.Sprintf("%.1f%%", 100*serialBP.PredictorAccuracy()))
	fmt.Println(bp.String())

	sch := stats.NewTable("Extension scheme (storage/transport stages)", "stage", "3-bit", "2-bit")
	for _, s := range []struct {
		name   string
		f3, f2 activity.StageBits
	}{
		{"RF read", s3.Counts().RFRead, s2.Counts().RFRead},
		{"RF write", s3.Counts().RFWrite, s2.Counts().RFWrite},
		{"D-cache data", s3.Counts().DCacheData, s2.Counts().DCacheData},
		{"Latches", s3.Counts().Latch, s2.Counts().Latch},
	} {
		sch.AddStringRow(s.name, stats.Pct(s.f3.Reduction()), stats.Pct(s.f2.Reduction()))
	}
	fmt.Println(sch.String())

	pt := stats.NewTable("Word partitions (stored bits per operand value)", "partition", "mean bits", "saving")
	for _, row := range parts.Rows() {
		pt.AddStringRow(row.Name, fmt.Sprintf("%.2f", row.MeanBits), fmt.Sprintf("%.1f%%", row.Saving))
	}
	fmt.Println(pt.String())

	// And one custom partition, to show the API directly.
	custom := sig.Partition{4, 12, 16}
	if err := custom.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom partition %v: value 0x1234 stores %d bits\n",
		custom, custom.StoredBits(0x1234))
}
