// Compiled kernel: write a workload in C (the repository's minic subset),
// compile it with the built-in compiler, and evaluate it across the
// paper's pipeline designs — the full gcc-style workflow of the paper's §3
// in one program.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/pipeline"
)

// A small convolution written in C.
const csrc = `
int signal[64] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3,
                  2, 3, 8, 4, 6, 2, 6, 4, 3, 3, 8, 3, 2, 7, 9, 5,
                  0, 2, 8, 8, 4, 1, 9, 7, 1, 6, 9, 3, 9, 9, 3, 7,
                  5, 1, 0, 5, 8, 2, 0, 9, 7, 4, 9, 4, 4, 5, 9, 2};
int kernel[5] = {1, 4, 6, 4, 1};
int out[64];

int main() {
    int i;
    int k;
    for (i = 2; i < 62; i += 1) {
        int acc = 0;
        for (k = 0; k < 5; k += 1) {
            acc += signal[i + k - 2] * kernel[k];
        }
        out[i] = acc >> 4;
    }
    int sum = 0;
    for (i = 0; i < 64; i += 1) {
        sum = (sum << 5) + sum + out[i];
    }
    print_int(sum);
    return sum;
}
`

func main() {
	asmText, err := minic.CompileToAsm(csrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d lines of C to %d lines of assembly\n\n",
		countLines(csrc), countLines(asmText))

	m := core.NewMachine(core.Config{
		Models: []string{
			pipeline.NameBaseline32, pipeline.NameByteSerial, pipeline.NameParallelSkewedBypass,
		},
		Granularities: []int{1},
	})
	rep, err := m.EvaluateSource(asmText)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %s (%d instructions)\n\n", rep.Output, rep.Insts)
	base := rep.CPI(pipeline.NameBaseline32)
	for _, n := range []string{pipeline.NameBaseline32, pipeline.NameByteSerial, pipeline.NameParallelSkewedBypass} {
		fmt.Printf("  %-14s CPI %.3f (%+.1f%%)\n", n, rep.CPI(n), 100*(rep.CPI(n)/base-1))
	}
	fmt.Printf("\nactivity saved (byte scheme): RF read %.1f%%, ALU %.1f%%, latches %.1f%%\n",
		rep.Activity[1].RFRead.Reduction(),
		rep.Activity[1].ALU.Reduction(),
		rep.Activity[1].Latch.Reduction())
}

func countLines(s string) int {
	n := 1
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}
