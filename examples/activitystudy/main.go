// Activity study: reproduce one row of the paper's Table 5/6 — per-stage
// activity reductions for a single benchmark at byte and halfword
// granularity — plus its operand significance histogram (Table 1 style).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/activity"
	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	name := flag.String("bench", "rawcaudio", "benchmark to study")
	flag.Parse()

	b, ok := bench.ByName(*name)
	if !ok {
		log.Fatalf("unknown benchmark %q; available: %v", *name, bench.Names())
	}

	// Profile the whole suite once to build the instruction recoder (the
	// paper recodes the top-8 function codes from a Mediabench profile).
	rc, _, err := trace.SuiteRecoder(bench.All())
	if err != nil {
		log.Fatal(err)
	}

	c, err := b.NewCPU()
	if err != nil {
		log.Fatal(err)
	}
	byteCol := activity.NewCollector(1, rc, c.Mem)
	halfCol := activity.NewCollector(2, rc, c.Mem)
	patterns := activity.NewPatternStats()
	if err := trace.RunOn(c, b, rc, byteCol, halfCol, patterns); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %s\n%d dynamic instructions, checksum verified\n\n",
		b.Name, b.Description, c.Retired)

	t := stats.NewTable("Per-stage activity reduction", "stage", "byte (Table 5)", "halfword (Table 6)")
	bRow, hRow := byteCol.Counts().Row(), halfCol.Counts().Row()
	for i, s := range activity.Stages() {
		t.AddStringRow(s, stats.Pct(bRow[i]), stats.Pct(hRow[i]))
	}
	fmt.Println(t.String())

	pt := stats.NewTable("Operand significance patterns (Table 1 style)", "pattern", "%", "cumulative %")
	for _, row := range patterns.Rows() {
		pt.AddStringRow(row.Pattern, fmt.Sprintf("%.1f", row.Percent), fmt.Sprintf("%.1f", row.Cumulative))
	}
	fmt.Println(pt.String())
	fmt.Printf("2-bit scheme coverage: %.1f%% of %d operand values\n",
		patterns.TwoBitCoverage(), patterns.Total())
}
