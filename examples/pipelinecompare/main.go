// Pipeline comparison: run one benchmark (or the whole suite) through all
// seven pipeline organizations and print the CPI series of Figures 4, 6, 8
// and 10.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	name := flag.String("bench", "", "single benchmark (default: whole suite)")
	flag.Parse()

	suite := bench.All()
	if *name != "" {
		b, ok := bench.ByName(*name)
		if !ok {
			log.Fatalf("unknown benchmark %q; available: %v", *name, bench.Names())
		}
		suite = []bench.Benchmark{b}
	}

	rc, _, err := trace.SuiteRecoder(bench.All())
	if err != nil {
		log.Fatal(err)
	}

	names := pipeline.AllNames()
	headers := append([]string{"benchmark"}, names...)
	t := stats.NewTable("CPI by pipeline organization", headers...)
	sums := make([]float64, len(names))
	for _, b := range suite {
		models := pipeline.NewAll()
		consumers := make([]trace.Consumer, len(models))
		for i, m := range models {
			consumers[i] = m
		}
		if _, err := trace.Run(b, rc, consumers...); err != nil {
			log.Fatal(err)
		}
		cells := []string{b.Name}
		for i, m := range models {
			cpi := m.Result().CPI()
			sums[i] += cpi
			cells = append(cells, fmt.Sprintf("%.3f", cpi))
		}
		t.AddStringRow(cells...)
	}
	if len(suite) > 1 {
		avg := []string{"AVG"}
		for _, s := range sums {
			avg = append(avg, fmt.Sprintf("%.3f", s/float64(len(suite))))
		}
		t.AddStringRow(avg...)
		rel := []string{"vs baseline"}
		base := sums[0]
		for _, s := range sums {
			rel = append(rel, fmt.Sprintf("%+.1f%%", 100*(s/base-1)))
		}
		t.AddStringRow(rel...)
	}
	fmt.Println(t.String())
	fmt.Println("paper reference: byte-serial +79%, halfword-serial CPI 1.96, semi-parallel +24%,")
	fmt.Println("compressed +6%, skewed close to baseline, skewed+bypass +2% (MICRO-33, §4-§6)")
}
